"""Synthetic SPECint CPU2000-like workloads.

Each builder returns an infinite (budget-terminated) :class:`Program`
written in the repro ISA, calibrated per its trait sheet in
:mod:`repro.workloads.traits`. The two Table II benchmarks (bzip2's
``generateMTFValues`` and twolf's ``new_dbox_a``) take a ``modified``
flag that applies the paper's hand optimisation — unrolling the hot loop
and rotating destination registers so consecutive renamings land in
different banks (Sec. 4.3).
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import fp_reg, int_reg
from repro.workloads.building_blocks import (
    DEFAULT_SEED,
    biased_bits,
    long_pattern_bits,
    random_words,
    rng_for,
    shuffled_cycle,
)

R = int_reg
F = fp_reg


def build_gzip(seed: int = DEFAULT_SEED) -> Program:
    """LZ-style match-length scanning over an L1-resident window.

    The window is a copy of itself with ~25% mutations, so the
    equal-bytes branch is taken with ~75% bias — predictable but not
    free, like gzip's match loops.
    """
    rng = rng_for("gzip", seed)
    b = ProgramBuilder("gzip")
    size = 8192
    window = random_words(rng, size, 0, 256)
    # Mutations follow a long repeating pattern (~75% match): TAGE's
    # geometric histories learn the match/mismatch sequence, gshare's
    # 16-bit history cannot.
    mutate = long_pattern_bits(rng, size, period=80)
    lookahead = [rng.randrange(256) if mutate[i] and rng.random() < 0.75
                 else v for i, v in enumerate(window)]
    win = b.data_region(window)
    ahead = b.data_region(lookahead)
    hist = b.reserve(256)

    r_i, r_n = R(1), R(2)
    r_win, r_ahead, r_hist = R(3), R(4), R(5)
    r_a, r_b, r_len, r_best = R(6), R(7), R(8), R(9)
    r_t1, r_t2, r_one = R(10), R(11), R(12)
    r_ha, r_hv = R(13), R(14)

    b.li(r_win, win)
    b.li(r_ahead, ahead)
    b.li(r_hist, hist)
    b.li(r_n, size)
    b.li(r_one, 1)
    b.li(r_i, 0)
    b.li(r_best, 0)
    b.label("scan")
    b.add(r_t1, r_win, r_i)
    b.ld(r_a, r_t1, 0)                      # window byte
    b.add(r_t2, r_ahead, r_i)
    b.ld(r_b, r_t2, 0)                      # lookahead byte
    b.bne(r_a, r_b, "mismatch")             # ~75% not taken
    b.addi(r_len, r_len, 1)                 # extend the match
    b.blt(r_len, r_best, "count")
    b.mov(r_best, r_len)
    b.jmp("count")
    b.label("mismatch")
    b.li(r_len, 0)
    b.label("count")
    b.add(r_ha, r_hist, r_a)                # histogram update
    b.ld(r_hv, r_ha, 0)
    b.add(r_hv, r_hv, r_one)
    b.st(r_hv, r_ha, 0)
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "scan")
    b.li(r_i, 0)
    b.li(r_best, 0)
    b.jmp("scan")
    return b.build()


def build_vpr(seed: int = DEFAULT_SEED) -> Program:
    """Placement random walk: a near-50/50 move-accept branch on random
    data, with a small fp cost accumulation."""
    rng = rng_for("vpr", seed)
    b = ProgramBuilder("vpr")
    size = 16384
    accept = b.data_region(biased_bits(rng, size, 0.5))
    costs = b.data_region([rng.random() for _ in range(size)])

    r_i, r_n, r_acc, r_cst = R(1), R(2), R(3), R(4)
    r_bit, r_pos, r_t, r_u = R(5), R(6), R(7), R(8)
    f_cost, f_delta = F(1), F(2)

    b.li(r_acc, accept)
    b.li(r_cst, costs)
    b.li(r_n, size)
    b.li(r_i, 0)
    b.li(r_pos, 0)
    b.label("walk")
    b.add(r_t, r_acc, r_i)
    b.ld(r_bit, r_t, 0)
    b.add(r_u, r_cst, r_i)
    b.fld(f_delta, r_u, 0)
    b.bnez(r_bit, "accepted")               # ~50/50: hard for everyone
    b.addi(r_pos, r_pos, -1)                # reject path
    b.fsub(f_cost, f_cost, f_delta)
    b.jmp("next")
    b.label("accepted")
    b.addi(r_pos, r_pos, 1)
    b.fadd(f_cost, f_cost, f_delta)
    b.label("next")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "walk")
    b.li(r_i, 0)
    b.jmp("walk")
    return b.build()


def build_gcc(seed: int = DEFAULT_SEED) -> Program:
    """Compiler-ish control soup: an 8-way indirect dispatch plus mixed
    predictable/biased branches over a larger static footprint."""
    rng = rng_for("gcc", seed)
    b = ProgramBuilder("gcc")
    b.jmp("start")

    # Eight "pass" handlers, each a small ALU block.
    handler_pcs = []
    for h in range(8):
        b.label(f"h{h}")
        handler_pcs.append(b.pc)
        r_x, r_y = R(20 + h % 4), R(24 + h % 4)
        b.addi(r_x, r_x, h + 1)
        b.xor(r_y, r_y, r_x)
        b.shl(r_x, r_x, R(12))
        b.add(r_y, r_y, r_x)
        b.jmp("after_dispatch")

    size = 2048
    # Node kinds biased toward a handful of common ones (like RTL codes).
    kinds = [min(7, int(rng.expovariate(0.55))) for _ in range(size)]
    kind_arr = b.data_region(kinds)
    flag_arr = b.data_region(biased_bits(rng, size, 0.85))
    table = b.data_region(handler_pcs)

    r_i, r_n, r_kinds, r_flags, r_table = R(1), R(2), R(3), R(4), R(5)
    r_k, r_f, r_sum = R(6), R(7), R(9)
    r_t1, r_t2, r_t3, r_t4 = R(8), R(10), R(11), R(13)

    b.label("start")
    b.li(r_kinds, kind_arr)
    b.li(r_flags, flag_arr)
    b.li(r_table, table)
    b.li(r_n, size)
    b.li(R(12), 1)
    b.li(r_i, 0)
    b.label("node")
    b.add(r_t1, r_kinds, r_i)
    b.ld(r_k, r_t1, 0)
    b.add(r_t2, r_table, r_k)
    b.ld(r_t3, r_t2, 0)                     # handler PC
    b.jr(r_t3)                              # indirect dispatch
    b.label("after_dispatch")
    b.add(r_t4, r_flags, r_i)
    b.ld(r_f, r_t4, 0)
    b.beqz(r_f, "cold")                     # ~85% taken-through
    b.addi(r_sum, r_sum, 3)
    b.jmp("advance")
    b.label("cold")
    b.sub(r_sum, r_sum, R(12))
    b.label("advance")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "node")
    b.li(r_i, 0)
    b.jmp("node")
    return b.build()


def build_mcf(seed: int = DEFAULT_SEED) -> Program:
    """Network-simplex arc scan over ~1.5 MB (beyond the 1 MB L2).

    The hot loop streams arc records one cache line apart — every load
    is a fresh miss, and a large window overlaps many of them — with an
    ~88%-biased suitability branch on the loaded cost and a pointer hop
    through a shuffled node cycle every 128 arcs (the serial component).
    """
    rng = rng_for("mcf", seed)
    b = ProgramBuilder("mcf")
    arcs = 192 * 1024                       # 1.5 MB of arc costs
    threshold = 1 << 16
    # ~88% of arcs are "profitable" (cost below threshold).
    costs = [rng.randrange(threshold) if rng.random() < 0.88
             else threshold + rng.randrange(threshold)
             for _ in range(arcs)]
    arc_base = b.data_region(costs)
    nodes = 4096
    node_base = b.data_region(shuffled_cycle(rng, nodes))

    r_i, r_n, r_ab, r_nb = R(1), R(2), R(3), R(4)
    r_thr, r_u, r_p = R(5), R(6), R(7)
    r_hop, r_mask = R(8), R(9)

    b.li(r_ab, arc_base)
    b.li(r_nb, node_base)
    b.li(r_n, arcs)
    b.li(r_thr, threshold)
    b.li(r_mask, 127)
    b.li(r_i, 0)
    b.li(r_p, 0)
    b.label("arc")
    # Four arcs per pass with rotated temporaries, as the compiled arc
    # loop's many live temporaries would look.
    for u in range(4):
        r_t, r_v = R(10 + u), R(14 + u)
        r_pos, r_neg = R(18 + u), R(22 + u)
        b.add(r_t, r_ab, r_i)
        b.ld(r_v, r_t, 8 * u)               # fresh line: misses L2
        b.bge(r_v, r_thr, f"unprofit{u}")   # ~88% not taken
        b.add(r_pos, r_pos, r_v)
        b.jmp(f"advance{u}")
        b.label(f"unprofit{u}")
        b.addi(r_neg, r_neg, 1)
        b.label(f"advance{u}")
    b.and_(r_hop, r_i, r_mask)
    b.bnez(r_hop, "next")                   # periodic pointer hop
    b.add(r_u, r_nb, r_p)
    b.ld(r_p, r_u, 0)                       # dependent node chase
    b.label("next")
    b.addi(r_i, r_i, 32)                    # four arcs, one line each
    b.blt(r_i, r_n, "arc")
    b.li(r_i, 0)
    b.jmp("arc")
    return b.build()


def build_crafty(seed: int = DEFAULT_SEED) -> Program:
    """Bitboard manipulation: shift/mask/xor chains, a popcount-style
    inner loop with predictable trip counts, all L1-resident."""
    rng = rng_for("crafty", seed)
    b = ProgramBuilder("crafty")
    size = 512
    boards = b.data_region(random_words(rng, size, 0, 1 << 62))

    r_i, r_n, r_base = R(1), R(2), R(3)
    r_one, r_eight = R(4), R(5)
    accumulators = (R(6), R(7), R(30), R(31))

    b.li(r_base, boards)
    b.li(r_n, size)
    b.li(r_one, 1)
    b.li(r_eight, 8)
    b.li(r_i, 0)
    b.label("board")
    # Two independent boards per iteration, fully unrolled popcount
    # with rotated temporaries — bitboard code is straight-line ILP.
    for u in range(2):
        r_a, r_b0, r_m1 = R(8 + u), R(10 + u), R(12 + u)
        r_b1, r_m2, r_b2 = R(14 + u), R(16 + u), R(18 + u)
        b.add(r_a, r_base, r_i)
        b.ld(r_b0, r_a, u)
        b.shl(r_m1, r_b0, r_one)            # attack-spread idiom
        b.xor(r_b1, r_b0, r_m1)
        b.shr(r_m2, r_b1, r_eight)
        b.or_(r_b2, r_b1, r_m2)
        current = r_b2
        for step in range(4):               # nibble-sum, rotated regs
            r_t = R(20 + u)                 # one AND temp per board
            r_next = R(22 + 4 * u + step)
            b.and_(r_t, current, r_one)
            b.shr(r_next, current, r_eight)
            acc = accumulators[step]
            b.add(acc, acc, r_t)
            current = r_next
    b.addi(r_i, r_i, 2)
    b.blt(r_i, r_n, "board")
    b.li(r_i, 0)
    b.jmp("board")
    return b.build()


def build_parser(seed: int = DEFAULT_SEED) -> Program:
    """Dictionary hash probing: open addressing with short chains; the
    hit/miss branch follows the ~70% load factor."""
    rng = rng_for("parser", seed)
    b = ProgramBuilder("parser")
    table_size = 65536
    keys_n = 8192
    table = [0] * table_size
    stored = random_words(rng, int(table_size * 0.7), 1, 1 << 20)
    for key in stored:
        h = key % table_size
        while table[h]:
            h = (h + 1) % table_size
        table[h] = key
    # Query stream: hit/miss pattern repeats with a long period (64),
    # learnable by TAGE but beyond gshare's history reach.
    hit_pattern = long_pattern_bits(rng, keys_n, period=64)
    queries = [rng.choice(stored) if hit_pattern[k]
               else rng.randrange(1, 1 << 20) for k in range(keys_n)]
    t_base = b.data_region(table)
    q_base = b.data_region(queries)

    r_i, r_n, r_tb, r_qb = R(1), R(2), R(3), R(4)
    r_key, r_h, r_e, r_mask = R(5), R(6), R(7), R(8)
    r_hits, r_t, r_u = R(9), R(10), R(11)

    b.li(r_tb, t_base)
    b.li(r_qb, q_base)
    b.li(r_n, keys_n)
    b.li(r_mask, table_size - 1)
    b.li(r_i, 0)
    b.label("query")
    b.add(r_t, r_qb, r_i)
    b.ld(r_key, r_t, 0)
    b.and_(r_h, r_key, r_mask)
    b.label("probe")
    b.add(r_u, r_tb, r_h)
    b.ld(r_e, r_u, 0)
    b.beqz(r_e, "miss")                     # empty slot ends the chain
    b.beq(r_e, r_key, "hit")
    b.addi(r_h, r_h, 1)
    b.and_(r_h, r_h, r_mask)
    b.jmp("probe")
    b.label("hit")
    b.addi(r_hits, r_hits, 1)
    b.label("miss")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "query")
    b.li(r_i, 0)
    b.jmp("query")
    return b.build()


def build_eon(seed: int = DEFAULT_SEED) -> Program:
    """Ray-shading style int benchmark: fp dot products plus a 4-way
    indirect method dispatch biased toward one common material."""
    rng = rng_for("eon", seed)
    b = ProgramBuilder("eon")
    b.jmp("start")

    handler_pcs = []
    for h in range(4):
        b.label(f"mat{h}")
        handler_pcs.append(b.pc)
        f_a, f_b = F(8 + h), F(12 + h)
        b.fmul(f_a, f_a, F(2))
        b.fadd(f_b, f_b, f_a)
        b.jmp("shaded")

    size = 8192
    mats = [0 if rng.random() < 0.7 else rng.randrange(1, 4)
            for _ in range(size)]
    norm = [rng.random() for _ in range(size)]
    light = [rng.random() for _ in range(size)]
    m_base = b.data_region(mats)
    n_base = b.data_region(norm)
    l_base = b.data_region(light)
    table = b.data_region(handler_pcs)

    r_i, r_n, r_m, r_nb, r_lb, r_tab = R(1), R(2), R(3), R(4), R(5), R(6)
    r_k, r_t1, r_t2, r_t3, r_t4, r_t5 = R(7), R(8), R(9), R(10), R(11), R(12)
    r_lit = R(13)
    f_n, f_l, f_dot, f_half = F(1), F(2), F(3), F(4)

    b.label("start")
    b.li(r_m, m_base)
    b.li(r_nb, n_base)
    b.li(r_lb, l_base)
    b.li(r_tab, table)
    b.li(r_n, size)
    b.li(r_t1, 1)
    b.fcvt(f_half, r_t1)                    # 1.0 threshold
    b.li(r_i, 0)
    b.label("ray")
    b.add(r_t1, r_nb, r_i)
    b.fld(f_n, r_t1, 0)
    b.add(r_t2, r_lb, r_i)
    b.fld(f_l, r_t2, 0)
    b.fmul(f_dot, f_n, f_l)
    b.fadd(f_dot, f_dot, f_n)
    b.fcmplt(r_lit, f_dot, f_half)          # ~biased lighting test
    b.bnez(r_lit, "lit")
    b.fadd(F(5), F(5), f_dot)
    b.label("lit")
    b.add(r_t3, r_m, r_i)
    b.ld(r_k, r_t3, 0)
    b.add(r_t4, r_tab, r_k)
    b.ld(r_t5, r_t4, 0)
    b.jr(r_t5)                              # material dispatch
    b.label("shaded")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "ray")
    b.li(r_i, 0)
    b.jmp("ray")
    return b.build()


def build_perlbmk(seed: int = DEFAULT_SEED) -> Program:
    """Bytecode interpreter: the classic 16-way indirect dispatch with a
    skewed opcode mix; the BTB's last-target guess is wrong whenever the
    opcode changes."""
    rng = rng_for("perlbmk", seed)
    b = ProgramBuilder("perlbmk")
    b.jmp("start")

    handler_pcs = []
    for h in range(16):
        b.label(f"op{h}")
        handler_pcs.append(b.pc)
        r_x = R(16 + h % 8)
        b.addi(r_x, r_x, h)
        b.xor(R(24), R(24), r_x)
        b.jmp("fetch_next")

    size = 16384
    # Skewed opcode histogram: a few hot ops, a long tail.
    ops = [min(15, int(rng.expovariate(0.35))) for _ in range(size)]
    code = b.data_region(ops)
    table = b.data_region(handler_pcs)

    r_ip, r_n, r_code, r_tab = R(1), R(2), R(3), R(4)
    r_op, r_t1, r_t2, r_t3 = R(5), R(6), R(7), R(8)

    b.label("start")
    b.li(r_code, code)
    b.li(r_tab, table)
    b.li(r_n, size)
    b.li(r_ip, 0)
    b.label("fetch")
    b.add(r_t1, r_code, r_ip)
    b.ld(r_op, r_t1, 0)
    b.add(r_t2, r_tab, r_op)
    b.ld(r_t3, r_t2, 0)
    b.jr(r_t3)                              # opcode dispatch
    b.label("fetch_next")
    b.addi(r_ip, r_ip, 1)
    b.blt(r_ip, r_n, "fetch")
    b.li(r_ip, 0)
    b.jmp("fetch")
    return b.build()


def build_gap(seed: int = DEFAULT_SEED) -> Program:
    """Computer-algebra arithmetic: multiply/divide mix driven by a
    long-period (64) branch pattern — TAGE's geometric histories learn
    it, gshare's 16-bit history cannot."""
    rng = rng_for("gap", seed)
    b = ProgramBuilder("gap")
    size = 32768
    pattern = b.data_region(long_pattern_bits(rng, size, period=64))
    operands = b.data_region(random_words(rng, size, 1, 1 << 12))

    r_i, r_n, r_pat, r_opnd = R(1), R(2), R(3), R(4)
    r_bit, r_x, r_acc, r_t, r_u = R(5), R(6), R(7), R(8), R(9)

    b.li(r_pat, pattern)
    b.li(r_opnd, operands)
    b.li(r_n, size)
    b.li(r_acc, 1)
    b.li(r_i, 0)
    b.label("term")
    b.add(r_t, r_pat, r_i)
    b.ld(r_bit, r_t, 0)
    b.add(r_u, r_opnd, r_i)
    b.ld(r_x, r_u, 0)
    b.beqz(r_bit, "reduce")                 # period-64 pattern
    b.mul(r_acc, r_acc, r_x)
    b.jmp("next")
    b.label("reduce")
    b.div(r_acc, r_acc, r_x)
    b.addi(r_acc, r_acc, 7)
    b.label("next")
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "term")
    b.li(r_i, 0)
    b.li(r_acc, 1)
    b.jmp("term")
    return b.build()


def build_vortex(seed: int = DEFAULT_SEED) -> Program:
    """Object-database update: 16-word record copy with field edits —
    store-heavy, fully predictable control."""
    rng = rng_for("vortex", seed)
    b = ProgramBuilder("vortex")
    records = 4096
    rec_words = 16
    src = b.data_region(random_words(rng, records * rec_words))
    dst = b.reserve(records * rec_words)

    r_r, r_n, r_src, r_dst = R(1), R(2), R(3), R(4)
    r_f, r_rw, r_one = R(5), R(6), R(7)
    r_sbase, r_dbase, r_off = R(8), R(9), R(10)

    b.li(r_src, src)
    b.li(r_dst, dst)
    b.li(r_n, records)
    b.li(r_rw, rec_words)
    b.li(r_one, 1)
    b.li(r_r, 0)
    b.label("record")
    b.mul(r_off, r_r, r_rw)
    b.add(r_sbase, r_src, r_off)
    b.add(r_dbase, r_dst, r_off)
    b.li(r_f, 0)
    b.label("field")
    # Four fields per pass, values and address temps rotated.
    for u in range(4):
        r_a, r_v, r_d = R(12 + u), R(16 + u), R(20 + u)
        b.add(r_a, r_sbase, r_f)
        b.ld(r_v, r_a, u)
        b.add(r_v, r_v, r_one)              # touch the field
        b.add(r_d, r_dbase, r_f)
        b.st(r_v, r_d, u)
    b.addi(r_f, r_f, 4)
    b.blt(r_f, r_rw, "field")
    b.addi(r_r, r_r, 1)
    b.blt(r_r, r_n, "record")
    b.li(r_r, 0)
    b.jmp("record")
    return b.build()


def build_bzip2(seed: int = DEFAULT_SEED,
                modified: bool = False) -> Program:
    """Move-to-front coding — the ``generateMTFValues`` hot loop of
    Table II.

    The scan for a symbol's current list position has geometric trip
    counts (locality-skewed input) with a hard-to-time exit branch. The
    original emits the scan with ONE address register and ONE value
    register reused every iteration — at most ``n`` scan steps can be in
    flight on an n-SP. The ``modified`` version applies the paper's
    optimisation: unroll by 4 with rotated destination registers.
    """
    rng = rng_for("bzip2", seed)
    b = ProgramBuilder("bzip2" + ("_mod" if modified else ""))
    alphabet = 64
    stream_n = 16384
    # Locality-skewed symbol stream repeating with a long period, so
    # the scan-exit branches are learnable by long-history predictors.
    base_syms = [min(alphabet - 1, int(rng.expovariate(0.25)))
                 for _ in range(48)]
    symbols = [base_syms[k % 48] for k in range(stream_n)]
    mtf_init = list(range(alphabet))
    s_base = b.data_region(symbols)
    l_base = b.data_region(mtf_init)

    r_i, r_n, r_sb, r_lb = R(1), R(2), R(3), R(4)
    r_sym, r_j, r_alpha = R(5), R(6), R(7)
    # The tight kernel registers: address temp + loaded value.
    r_t, r_v = R(8), R(9)
    r_prev, r_k = R(10), R(11)

    b.li(r_sb, s_base)
    b.li(r_lb, l_base)
    b.li(r_n, stream_n)
    b.li(r_alpha, alphabet)
    b.li(r_i, 0)
    b.label("symbol")
    b.add(r_t, r_sb, r_i)
    b.ld(r_sym, r_t, 0)
    b.li(r_j, 0)
    b.label("scan")
    if not modified:
        # Original: one address register, one value register, reused.
        b.add(r_t, r_lb, r_j)
        b.ld(r_v, r_t, 0)
        b.beq(r_v, r_sym, "found")
        b.addi(r_j, r_j, 1)
        b.jmp("scan")
    else:
        # Modified (Sec. 4.3): unrolled x4, destinations rotated over
        # four address and four value registers.
        for u in range(4):
            r_tu, r_vu = R(8 + u), R(16 + u)
            b.add(r_tu, r_lb, r_j)
            if u:
                b.addi(r_tu, r_tu, u)
            b.ld(r_vu, r_tu, 0)
            b.beq(r_vu, r_sym, f"found_{u}")
        b.addi(r_j, r_j, 4)
        b.jmp("scan")
        for u in range(4):
            b.label(f"found_{u}")
            if u:
                b.addi(r_j, r_j, u)
            if u != 3:
                b.jmp("found")
    b.label("found")
    # Move-to-front shuffle: shift list[0..j-1] up by one.
    b.li(r_k, 0)
    b.mov(r_prev, r_sym)
    b.label("shift")
    b.bge(r_k, r_j, "placed")
    b.add(r_t, r_lb, r_k)
    b.ld(r_v, r_t, 0)
    b.st(r_prev, r_t, 0)
    b.mov(r_prev, r_v)
    b.addi(r_k, r_k, 1)
    b.jmp("shift")
    b.label("placed")
    b.add(r_t, r_lb, r_j)
    b.st(r_prev, r_t, 0)
    b.addi(r_i, r_i, 1)
    b.blt(r_i, r_n, "symbol")
    b.li(r_i, 0)
    b.jmp("symbol")
    return b.build()


def build_twolf(seed: int = DEFAULT_SEED,
                modified: bool = False) -> Program:
    """Cell placement cost — the ``new_dbox_a`` kernel of Table II.

    Per net terminal: load both coordinates, branch on the (data-random)
    sign of the deltas, accumulate |dx| + |dy|. The original reuses one
    coordinate register and one delta register; the modified version
    unrolls by 2 and rotates them (the paper changed 3 loops by hand).
    """
    rng = rng_for("twolf", seed)
    b = ProgramBuilder("twolf" + ("_mod" if modified else ""))
    terms = 32768
    xs = b.data_region(random_words(rng, terms, 0, 1024))
    ys = b.data_region(random_words(rng, terms, 0, 1024))

    r_i, r_n, r_xb, r_yb = R(1), R(2), R(3), R(4)
    r_cx, r_cy, r_cost = R(5), R(6), R(7)
    r_c, r_d, r_t = R(8), R(9), R(10)       # the tight kernel registers

    b.li(r_xb, xs)
    b.li(r_yb, ys)
    b.li(r_n, terms)
    b.li(r_cx, 512)
    b.li(r_cy, 512)
    b.li(r_i, 0)
    b.label("term")

    def emit_axis(base_reg: int, centre_reg: int, r_coord: int,
                  r_delta: int, tag: str) -> None:
        b.add(r_t, base_reg, r_i)
        b.ld(r_coord, r_t, 0)
        b.sub(r_delta, r_coord, centre_reg)
        b.bge(r_delta, R(0), f"abs_{tag}")  # sign of random data
        b.sub(r_delta, R(0), r_delta)
        b.label(f"abs_{tag}")
        b.add(r_cost, r_cost, r_delta)

    if not modified:
        emit_axis(r_xb, r_cx, r_c, r_d, "x")
        emit_axis(r_yb, r_cy, r_c, r_d, "y")
        b.addi(r_i, r_i, 1)
    else:
        # Unrolled x2 with rotated coordinate/delta registers.
        for u in range(2):
            rc, rd = R(8 + u * 2), R(9 + u * 2)
            b.add(r_t, r_xb, r_i)
            b.ld(rc, r_t, u)
            b.sub(rd, rc, r_cx)
            b.bge(rd, R(0), f"ax{u}")
            b.sub(rd, R(0), rd)
            b.label(f"ax{u}")
            b.add(r_cost, r_cost, rd)
            rc2, rd2 = R(12 + u * 2), R(13 + u * 2)
            b.add(r_t, r_yb, r_i)
            b.ld(rc2, r_t, u)
            b.sub(rd2, rc2, r_cy)
            b.bge(rd2, R(0), f"ay{u}")
            b.sub(rd2, R(0), rd2)
            b.label(f"ay{u}")
            b.add(r_cost, r_cost, rd2)
        b.addi(r_i, r_i, 2)
    b.blt(r_i, r_n, "term")
    b.li(r_i, 0)
    b.jmp("term")
    return b.build()


SPECINT_BUILDERS = {
    "gzip": build_gzip,
    "vpr": build_vpr,
    "gcc": build_gcc,
    "mcf": build_mcf,
    "crafty": build_crafty,
    "parser": build_parser,
    "eon": build_eon,
    "perlbmk": build_perlbmk,
    "gap": build_gap,
    "vortex": build_vortex,
    "bzip2": build_bzip2,
    "twolf": build_twolf,
}
