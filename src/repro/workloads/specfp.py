"""Synthetic SPECfp CPU2000-like workloads.

The fp suite is where the paper's Sec. 4.2 effect lives: compilers
minimise register usage in tight loops, so hot fp kernels reuse the same
few destination registers and the n-SP stalls waiting for bank entries
(Fig. 8). ``swim``, ``mgrid`` and ``equake`` are built tight on purpose
(they are the Table II kernels); ``fma3d`` rotates destinations across
many registers and is the published low-stall counter-example.
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import fp_reg, int_reg
from repro.workloads.building_blocks import (
    DEFAULT_SEED,
    random_words,
    rng_for,
)

R = int_reg
F = fp_reg


def _fp_array(builder: ProgramBuilder, rng, count: int,
              lo: float = 0.0, hi: float = 1.0) -> int:
    return builder.data_region(
        [lo + rng.random() * (hi - lo) for _ in range(count)])


def build_wupwise(seed: int = DEFAULT_SEED) -> Program:
    """Complex matrix-vector arithmetic, unrolled x4 with destination
    registers rotated across f8..f23 — generous register use."""
    rng = rng_for("wupwise", seed)
    b = ProgramBuilder("wupwise")
    size = 32768
    re_a = _fp_array(b, rng, size)
    im_a = _fp_array(b, rng, size)

    r_i, r_n, r_ra, r_ia = R(1), R(2), R(3), R(4)
    b.li(r_ra, re_a)
    b.li(r_ia, im_a)
    b.li(r_n, size)
    b.li(r_i, 0)
    b.label("cmul")
    for u in range(4):
        f_re, f_im = F(8 + u), F(12 + u)
        f_pr, f_pi = F(16 + u), F(20 + u)
        r_t1, r_t2 = R(6 + u), R(10 + u)
        b.add(r_t1, r_ra, r_i)
        b.fld(f_re, r_t1, u)
        b.add(r_t2, r_ia, r_i)
        b.fld(f_im, r_t2, u)
        b.fmul(f_pr, f_re, f_re)
        b.fmul(f_pi, f_im, f_im)
        b.fsub(f_pr, f_pr, f_pi)
        b.fadd(F(24 + u), F(24 + u), f_pr)
    b.addi(r_i, r_i, 4)
    b.blt(r_i, r_n, "cmul")
    b.li(r_i, 0)
    b.jmp("cmul")
    return b.build()


def build_swim(seed: int = DEFAULT_SEED, modified: bool = False) -> Program:
    """Shallow-water stencil — the ``calc3`` loop of Table II.

    Original: every term accumulates through ONE accumulator (f2) with
    ONE temp (f1), so successive renamings pile into two fp banks.
    Modified: the paper's fix — four independent accumulators/temps
    rotated per unrolled iteration, summed at the end of each pass.
    """
    rng = rng_for("swim", seed)
    b = ProgramBuilder("swim" + ("_mod" if modified else ""))
    n = 98304                         # 4 x 96K words = 3 MB: streams past L2
    u_arr = _fp_array(b, rng, n)
    v_arr = _fp_array(b, rng, n)
    p_arr = _fp_array(b, rng, n)
    out = b.reserve(n)

    r_i, r_n, r_u, r_v, r_p, r_o, r_t = (R(k) for k in range(1, 8))
    b.li(r_u, u_arr)
    b.li(r_v, v_arr)
    b.li(r_p, p_arr)
    b.li(r_o, out)
    b.li(r_n, n - 4)
    b.li(r_i, 1)
    b.label("calc3")
    if not modified:
        # Distinct address registers per array (as a compiler would),
        # but ONE accumulator and ONE fp temp — the calc3 tightness.
        f_acc, f_t = F(2), F(1)
        r_au, r_ap, r_av, r_ao = R(8), R(9), R(10), R(11)
        b.add(r_au, r_u, r_i)
        b.fld(f_t, r_au, 0)
        b.fmov(f_acc, f_t)
        b.add(r_ap, r_p, r_i)
        b.fld(f_t, r_ap, 1)            # p[i+1]
        b.fadd(f_acc, f_acc, f_t)
        b.fld(f_t, r_ap, -1)           # p[i-1]
        b.fsub(f_acc, f_acc, f_t)
        b.add(r_av, r_v, r_i)
        b.fld(f_t, r_av, 0)
        b.fmul(f_t, f_t, f_t)
        b.fadd(f_acc, f_acc, f_t)
        b.add(r_ao, r_o, r_i)
        b.fst(f_acc, r_ao, 0)
        b.addi(r_i, r_i, 1)
    else:
        for k in range(4):
            f_acc, f_t = F(2 + k), F(8 + k)
            r_au, r_ap = R(8 + k), R(12 + k)
            r_av, r_ao = R(16 + k), R(20 + k)
            b.add(r_au, r_u, r_i)
            b.fld(f_t, r_au, k)
            b.fmov(f_acc, f_t)
            b.add(r_ap, r_p, r_i)
            b.fld(f_t, r_ap, k + 1)
            b.fadd(f_acc, f_acc, f_t)
            b.fld(f_t, r_ap, k - 1)
            b.fsub(f_acc, f_acc, f_t)
            b.add(r_av, r_v, r_i)
            b.fld(f_t, r_av, k)
            b.fmul(f_t, f_t, f_t)
            b.fadd(f_acc, f_acc, f_t)
            b.add(r_ao, r_o, r_i)
            b.fst(f_acc, r_ao, k)
        b.addi(r_i, r_i, 4)
    b.blt(r_i, r_n, "calc3")
    b.li(r_i, 1)
    b.jmp("calc3")
    return b.build()


def build_mgrid(seed: int = DEFAULT_SEED, modified: bool = False) -> Program:
    """Multigrid residual — the ``resid`` kernel of Table II: a weighted
    neighbour sum folded through one accumulator (original) or four
    rotated ones (modified)."""
    rng = rng_for("mgrid", seed)
    b = ProgramBuilder("mgrid" + ("_mod" if modified else ""))
    n = 131072
    grid = _fp_array(b, rng, n)
    out = b.reserve(n)

    r_i, r_n, r_g, r_o, r_t = R(1), R(2), R(3), R(4), R(5)
    b.li(r_g, grid)
    b.li(r_o, out)
    b.li(r_n, n - 8)
    b.li(r_i, 2)
    # Stencil weights in f20..f22 (built once from integer conversions).
    b.li(r_t, 2)
    b.fcvt(F(20), r_t)
    b.li(r_t, 1)
    b.fcvt(F(21), r_t)
    b.li(r_t, 3)
    b.fcvt(F(22), r_t)
    b.label("resid")
    if not modified:
        # Separate grid/output address registers; ONE accumulator and
        # ONE fp temp folded through the whole stencil — resid's shape.
        f_acc, f_t = F(2), F(1)
        r_ag, r_ao = R(6), R(7)
        b.add(r_ag, r_g, r_i)
        b.fld(f_t, r_ag, 0)
        b.fmul(f_acc, f_t, F(20))
        for off in (-2, -1, 1, 2):
            b.fld(f_t, r_ag, off)
            b.fmul(f_t, f_t, F(21))
            b.fadd(f_acc, f_acc, f_t)      # single accumulator chain
        b.fdiv(f_acc, f_acc, F(22))
        b.add(r_ao, r_o, r_i)
        b.fst(f_acc, r_ao, 0)
        b.addi(r_i, r_i, 1)
    else:
        for k in range(4):
            f_acc, f_t = F(2 + k), F(8 + k)
            r_ag, r_ao = R(6 + k), R(10 + k)
            b.add(r_ag, r_g, r_i)
            b.fld(f_t, r_ag, k)
            b.fmul(f_acc, f_t, F(20))
            for off in (-2, -1, 1, 2):
                b.fld(f_t, r_ag, k + off)
                b.fmul(f_t, f_t, F(21))
                b.fadd(f_acc, f_acc, f_t)
            b.fdiv(f_acc, f_acc, F(22))
            b.add(r_ao, r_o, r_i)
            b.fst(f_acc, r_ao, k)
        b.addi(r_i, r_i, 4)
    b.blt(r_i, r_n, "resid")
    b.li(r_i, 2)
    b.jmp("resid")
    return b.build()


def build_applu(seed: int = DEFAULT_SEED) -> Program:
    """Blocked SSOR-style sweeps: two streams, moderate rotation over
    f4..f11, predictable control."""
    rng = rng_for("applu", seed)
    b = ProgramBuilder("applu")
    n = 131072
    a = _fp_array(b, rng, n)
    c = _fp_array(b, rng, n, 0.5, 1.5)
    out = b.reserve(n)

    r_i, r_n, r_a, r_c, r_o = (R(k) for k in range(1, 6))
    b.li(r_a, a)
    b.li(r_c, c)
    b.li(r_o, out)
    b.li(r_n, n - 2)
    b.li(r_i, 0)
    b.label("sweep")
    for u in range(2):
        f_x, f_y, f_z = F(4 + u * 3), F(5 + u * 3), F(6 + u * 3)
        r_t1, r_t2, r_t3 = R(6 + u * 3), R(7 + u * 3), R(8 + u * 3)
        b.add(r_t1, r_a, r_i)
        b.fld(f_x, r_t1, u)
        b.add(r_t2, r_c, r_i)
        b.fld(f_y, r_t2, u)
        b.fmul(f_z, f_x, f_y)
        b.fsub(f_z, f_z, f_x)
        b.fadd(f_z, f_z, f_y)
        b.add(r_t3, r_o, r_i)
        b.fst(f_z, r_t3, u)
    b.addi(r_i, r_i, 2)
    b.blt(r_i, r_n, "sweep")
    b.li(r_i, 0)
    b.jmp("sweep")
    return b.build()


def build_mesa(seed: int = DEFAULT_SEED) -> Program:
    """Span rasterisation: per-pixel fp interpolation with a ~90% biased
    coverage branch and an int edge counter."""
    rng = rng_for("mesa", seed)
    b = ProgramBuilder("mesa")
    n = 4096
    cover = b.data_region([1 if rng.random() < 0.9 else 0
                           for _ in range(n)])
    depth = _fp_array(b, rng, n)

    r_i, r_n, r_cv, r_dp = (R(k) for k in range(1, 5))
    f_dz = F(0)
    b.li(r_cv, cover)
    b.li(r_dp, depth)
    b.li(r_n, n)
    b.li(R(5), 1)
    b.fcvt(f_dz, R(5))
    b.li(r_i, 0)
    b.label("pixel")
    # Four pixels per pass: coverage bits, depth values, accumulators
    # all rotated (span code is unrolled by real rasterisers too).
    for u in range(4):
        r_t, r_u2, r_bit = R(6 + u), R(10 + u), R(14 + u)
        f_z, f_acc = F(1 + u), F(8 + u)
        b.add(r_t, r_cv, r_i)
        b.ld(r_bit, r_t, u)
        b.add(r_u2, r_dp, r_i)
        b.fld(f_z, r_u2, u)
        b.fadd(f_z, f_z, f_dz)              # interpolate
        b.beqz(r_bit, f"clipped{u}")        # ~90% taken-through
        b.fadd(f_acc, f_acc, f_z)
        b.label(f"clipped{u}")
    b.addi(r_i, r_i, 4)
    b.blt(r_i, r_n, "pixel")
    b.li(r_i, 0)
    b.jmp("pixel")
    return b.build()


def build_art(seed: int = DEFAULT_SEED) -> Program:
    """Adaptive-resonance scan: streaming dot products over ~1 MB of
    weights (at the L2 boundary), four rotated accumulators."""
    rng = rng_for("art", seed)
    b = ProgramBuilder("art")
    n = 131072                              # 2 x 128K words = 2 MB
    weights = _fp_array(b, rng, n)
    inputs = _fp_array(b, rng, n)

    r_i, r_n, r_w, r_x = (R(k) for k in range(1, 5))
    b.li(r_w, weights)
    b.li(r_x, inputs)
    b.li(r_n, n)
    b.li(r_i, 0)
    b.label("dot")
    for u in range(4):
        f_w, f_x, f_acc = F(4 + u), F(8 + u), F(12 + u)
        r_t1, r_t2 = R(6 + u), R(10 + u)
        b.add(r_t1, r_w, r_i)
        b.fld(f_w, r_t1, u)
        b.add(r_t2, r_x, r_i)
        b.fld(f_x, r_t2, u)
        b.fmul(f_w, f_w, f_x)
        b.fadd(f_acc, f_acc, f_w)
    b.addi(r_i, r_i, 4)
    b.blt(r_i, r_n, "dot")
    b.li(r_i, 0)
    b.jmp("dot")
    return b.build()


def build_equake(seed: int = DEFAULT_SEED, modified: bool = False) -> Program:
    """Sparse matrix-vector product — the ``smvp`` kernel of Table II.

    Gather loads through a column-index array into ONE accumulator with
    ONE value temp (original), or unrolled x4 with rotated registers
    (modified). The gather also produces irregular D-cache behaviour."""
    rng = rng_for("equake", seed)
    b = ProgramBuilder("equake" + ("_mod" if modified else ""))
    rows = 8192
    nnz_per_row = 8
    vec_n = 32768
    nnz = rows * nnz_per_row
    cols = b.data_region([rng.randrange(vec_n) for _ in range(nnz)])
    vals = _fp_array(b, rng, nnz)
    vec = _fp_array(b, rng, vec_n)
    out = b.reserve(rows)

    r_row, r_rows, r_k, r_kn = R(1), R(2), R(3), R(4)
    r_cb, r_vb, r_xb, r_ob = R(5), R(6), R(7), R(8)
    r_c, r_t, r_base = R(9), R(10), R(11)
    b.li(r_cb, cols)
    b.li(r_vb, vals)
    b.li(r_xb, vec)
    b.li(r_ob, out)
    b.li(r_rows, rows)
    b.li(r_kn, nnz_per_row)
    b.li(r_row, 0)
    b.label("row")
    b.mul(r_base, r_row, r_kn)
    b.li(r_k, 0)
    b.label("elem")
    if not modified:
        # Rotating address registers (compiler-normal), but ONE fp
        # accumulator, value and gather temp — smvp's tightness.
        f_acc, f_v, f_x = F(2), F(1), F(3)
        r_off, r_ac, r_av, r_ax = R(12), R(13), R(14), R(15)
        b.add(r_off, r_base, r_k)
        b.add(r_ac, r_cb, r_off)
        b.ld(r_c, r_ac, 0)                  # column index
        b.add(r_av, r_vb, r_off)
        b.fld(f_v, r_av, 0)                 # matrix value
        b.add(r_ax, r_xb, r_c)
        b.fld(f_x, r_ax, 0)                 # gathered x[col]
        b.fmul(f_v, f_v, f_x)
        b.fadd(f_acc, f_acc, f_v)           # single accumulator
        b.addi(r_k, r_k, 1)
    else:
        for u in range(4):
            f_acc, f_v, f_x = F(2 + u), F(8 + u), F(12 + u)
            r_cu = R(12 + u)
            r_off, r_ac = R(16 + u), R(20 + u)
            r_av, r_ax = R(24 + u), R(28 + u)
            b.add(r_off, r_base, r_k)
            b.add(r_ac, r_cb, r_off)
            b.ld(r_cu, r_ac, u)
            b.add(r_av, r_vb, r_off)
            b.fld(f_v, r_av, u)
            b.add(r_ax, r_xb, r_cu)
            b.fld(f_x, r_ax, 0)
            b.fmul(f_v, f_v, f_x)
            b.fadd(f_acc, f_acc, f_v)
        b.addi(r_k, r_k, 4)
    b.blt(r_k, r_kn, "elem")
    b.add(r_t, r_ob, r_row)
    b.fst(F(2), r_t, 0)
    b.addi(r_row, r_row, 1)
    b.blt(r_row, r_rows, "row")
    b.li(r_row, 0)
    b.jmp("row")
    return b.build()


def build_ammp(seed: int = DEFAULT_SEED) -> Program:
    """Molecular-dynamics force term: an fp divide per interaction
    (12-cycle chains), generous register rotation."""
    rng = rng_for("ammp", seed)
    b = ProgramBuilder("ammp")
    n = 98304
    dist = _fp_array(b, rng, n, 0.5, 2.0)
    charge = _fp_array(b, rng, n, 0.1, 1.0)

    r_i, r_n, r_d, r_q = (R(k) for k in range(1, 5))
    b.li(r_d, dist)
    b.li(r_q, charge)
    b.li(r_n, n)
    b.li(r_i, 0)
    b.label("pair")
    for u in range(2):
        f_r, f_c, f_f = F(4 + u), F(8 + u), F(12 + u)
        r_t1, r_t2 = R(6 + u), R(8 + u)
        b.add(r_t1, r_d, r_i)
        b.fld(f_r, r_t1, u)
        b.add(r_t2, r_q, r_i)
        b.fld(f_c, r_t2, u)
        b.fmul(f_r, f_r, f_r)               # r^2
        b.fdiv(f_f, f_c, f_r)               # coulomb term
        b.fadd(F(16 + u), F(16 + u), f_f)
    b.addi(r_i, r_i, 2)
    b.blt(r_i, r_n, "pair")
    b.li(r_i, 0)
    b.jmp("pair")
    return b.build()


def build_lucas(seed: int = DEFAULT_SEED) -> Program:
    """FFT-style butterflies with a 64-word stride (one access per cache
    line) and rotated register pairs."""
    rng = rng_for("lucas", seed)
    b = ProgramBuilder("lucas")
    n = 196608
    data = _fp_array(b, rng, n)
    stride = 64

    r_i, r_n, r_b, r_s = (R(k) for k in range(1, 5))
    b.li(r_b, data)
    b.li(r_n, n - stride)
    b.li(r_s, stride)
    b.li(r_i, 0)
    b.label("bfly")
    for u in range(2):
        f_a, f_b2, f_s, f_d = F(8 + u), F(10 + u), F(12 + u), F(14 + u)
        r_lo, r_hi = R(6 + u), R(8 + u)
        b.add(r_lo, r_b, r_i)
        b.fld(f_a, r_lo, u)
        b.add(r_hi, r_lo, r_s)
        b.fld(f_b2, r_hi, u)
        b.fadd(f_s, f_a, f_b2)
        b.fsub(f_d, f_a, f_b2)
        b.fst(f_s, r_hi, u)
        b.fadd(F(16 + u), F(16 + u), f_d)
    b.addi(r_i, r_i, 2)
    b.blt(r_i, r_n, "bfly")
    b.li(r_i, 0)
    b.jmp("bfly")
    return b.build()


def build_fma3d(seed: int = DEFAULT_SEED) -> Program:
    """Finite-element update with destinations fully rotated across
    f4..f27 — the published low-stall fp benchmark (Sec. 4.2: "in
    programs with very low stall cycles, such as fma3d, the 8-SP
    performance is better than that of CPR")."""
    rng = rng_for("fma3d", seed)
    b = ProgramBuilder("fma3d")
    n = 32768
    strain = _fp_array(b, rng, n)
    stress = _fp_array(b, rng, n)
    out = b.reserve(n)

    r_i, r_n, r_a, r_s, r_o = (R(k) for k in range(1, 6))
    b.li(r_a, strain)
    b.li(r_s, stress)
    b.li(r_o, out)
    b.li(r_n, n - 8)
    b.li(r_i, 0)
    b.label("elem")
    for u in range(8):
        f_e, f_s, f_r = F(4 + u), F(12 + u), F(20 + u)
        r_t1, r_t2, r_t3 = R(6 + u), R(14 + u), R(22 + u)
        b.add(r_t1, r_a, r_i)
        b.fld(f_e, r_t1, u)
        b.add(r_t2, r_s, r_i)
        b.fld(f_s, r_t2, u)
        b.fmul(f_r, f_e, f_s)
        b.fadd(f_r, f_r, f_e)
        b.add(r_t3, r_o, r_i)
        b.fst(f_r, r_t3, u)
    b.addi(r_i, r_i, 8)
    b.blt(r_i, r_n, "elem")
    b.li(r_i, 0)
    b.jmp("elem")
    return b.build()


SPECFP_BUILDERS = {
    "wupwise": build_wupwise,
    "swim": build_swim,
    "mgrid": build_mgrid,
    "applu": build_applu,
    "mesa": build_mesa,
    "art": build_art,
    "equake": build_equake,
    "ammp": build_ammp,
    "lucas": build_lucas,
    "fma3d": build_fma3d,
}
