"""Shared ingredients for the synthetic SPEC-like kernels.

Everything is seeded, so programs (and therefore simulations) are fully
deterministic.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import ProgramBuilder

DEFAULT_SEED = 20080612   # MICRO-41 submission season


def rng_for(name: str, seed: int = DEFAULT_SEED) -> random.Random:
    """Per-workload RNG: independent streams per benchmark name."""
    return random.Random(f"{name}:{seed}")


def random_words(rng: random.Random, count: int,
                 lo: int = 0, hi: int = 1 << 16) -> List[int]:
    """Uniform random word values."""
    return [rng.randrange(lo, hi) for _ in range(count)]


def biased_bits(rng: random.Random, count: int, taken_bias: float) -> List[int]:
    """0/1 stream where 1 appears with probability ``taken_bias``.

    Branching on these is as predictable as the bias: 0.5 defeats every
    predictor, 0.9 trains quickly.
    """
    return [1 if rng.random() < taken_bias else 0 for _ in range(count)]


def long_pattern_bits(rng: random.Random, count: int,
                      period: int) -> List[int]:
    """A repeating random pattern of the given period.

    Periods well beyond gshare's 16-bit history (e.g. 48-96) are exactly
    what TAGE's long geometric histories capture and gshare cannot —
    the differentiation between Figs. 6 and 7.
    """
    pattern = [rng.randrange(2) for _ in range(period)]
    return [pattern[i % period] for i in range(count)]


def shuffled_cycle(rng: random.Random, nodes: int, stride: int = 1) -> List[int]:
    """Next-pointer array forming one random Hamiltonian cycle.

    ``result[i]`` is the index of the node after ``i``; chasing it visits
    every node before repeating, defeating both caches (for large
    regions) and any stride prefetch intuition.
    """
    order = list(range(nodes))
    rng.shuffle(order)
    nxt = [0] * nodes
    for position, node in enumerate(order):
        nxt[node] = order[(position + 1) % nodes]
    return [n * stride for n in nxt]


def emit_outer_loop_reset(builder: ProgramBuilder, counter_reg: int,
                          top_label: str) -> None:
    """Standard tail: reset and jump back so programs run forever (the
    instruction budget, not HALT, ends measurement runs)."""
    builder.li(counter_reg, 0)
    builder.jmp(top_label)
