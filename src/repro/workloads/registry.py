"""Workload registry: names -> builders, suites, and a program cache.

Programs are deterministic for a given (name, seed); the cache avoids
rebuilding the larger data regions (mcf's 1.5 MB cycle) for every
simulation in a sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.isa.program import Program
from repro.workloads.building_blocks import DEFAULT_SEED
from repro.workloads.modified import MODIFIED_BUILDERS, TABLE2_ENTRIES
from repro.workloads.specfp import SPECFP_BUILDERS
from repro.workloads.specint import SPECINT_BUILDERS
from repro.workloads.traits import TRAITS, WorkloadTraits

BUILDERS: Dict[str, Callable[..., Program]] = {}
BUILDERS.update(SPECINT_BUILDERS)
BUILDERS.update(SPECFP_BUILDERS)
BUILDERS.update(MODIFIED_BUILDERS)

#: Benchmark order as in the paper's figures.
SPECINT: List[str] = ["gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf"]
SPECFP: List[str] = ["wupwise", "swim", "mgrid", "applu", "mesa", "art",
                     "equake", "ammp", "lucas", "fma3d"]

_cache: Dict[Tuple[str, int], Program] = {}


def get_program(name: str, seed: int = DEFAULT_SEED) -> Program:
    """Build (or fetch from cache) the workload called ``name``."""
    if name not in BUILDERS:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {sorted(BUILDERS)}")
    key = (name, seed)
    if key not in _cache:
        _cache[key] = BUILDERS[name](seed=seed)
    return _cache[key]


def get_traits(name: str) -> WorkloadTraits:
    """Trait sheet for ``name`` (modified variants share the base's)."""
    base = name[:-4] if name.endswith("_mod") else name
    return TRAITS[base]


def all_workloads() -> List[str]:
    return sorted(BUILDERS)


__all__ = ["BUILDERS", "SPECFP", "SPECINT", "TABLE2_ENTRIES",
           "all_workloads", "get_program", "get_traits"]
