"""Synthetic SPEC CPU2000-like workloads and their registry."""

from repro.workloads.building_blocks import DEFAULT_SEED
from repro.workloads.modified import TABLE2_ENTRIES, Table2Entry
from repro.workloads.registry import (
    BUILDERS,
    SPECFP,
    SPECINT,
    all_workloads,
    get_program,
    get_traits,
)
from repro.workloads.traits import TRAITS, WorkloadTraits

__all__ = [
    "BUILDERS",
    "DEFAULT_SEED",
    "SPECFP",
    "SPECINT",
    "TABLE2_ENTRIES",
    "TRAITS",
    "Table2Entry",
    "WorkloadTraits",
    "all_workloads",
    "get_program",
    "get_traits",
]
