"""Random structured program generator (fuzzing substrate).

Generates seeded, architecturally well-defined programs: straight-line
ALU blocks, loads/stores confined to a scratch region, forward branches
on computed values and bounded counted loops, closed by an outer jump so
the program runs forever (budget-terminated).

Used by the fuzz tests to cross-check all three timing cores against the
reference emulator on inputs nobody hand-wrote — the strongest guard
against rename/recovery/forwarding bugs.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import fp_reg, int_reg

_ALU_EMITTERS = [
    lambda b, d, s1, s2: b.add(d, s1, s2),
    lambda b, d, s1, s2: b.sub(d, s1, s2),
    lambda b, d, s1, s2: b.xor(d, s1, s2),
    lambda b, d, s1, s2: b.and_(d, s1, s2),
    lambda b, d, s1, s2: b.or_(d, s1, s2),
    lambda b, d, s1, s2: b.mul(d, s1, s2),
    lambda b, d, s1, s2: b.slt(d, s1, s2),
]

_FP_EMITTERS = [
    lambda b, d, s1, s2: b.fadd(d, s1, s2),
    lambda b, d, s1, s2: b.fsub(d, s1, s2),
    lambda b, d, s1, s2: b.fmul(d, s1, s2),
]


def random_program(seed: int, blocks: int = 8,
                   scratch_words: int = 64) -> Program:
    """Build a random structured program for the given seed."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"fuzz-{seed}")
    data = b.data_region([rng.randrange(1, 100)
                          for _ in range(scratch_words)])

    # Register roles: r1 scratch base, r2 mask, r3..r11 data,
    # r12..r15 loop counters, f0..f5 fp data.
    r_base, r_mask = int_reg(1), int_reg(2)
    data_regs: List[int] = [int_reg(k) for k in range(3, 12)]
    counter_regs = [int_reg(k) for k in range(12, 16)]
    fp_regs = [fp_reg(k) for k in range(6)]

    b.li(r_base, data)
    b.li(r_mask, scratch_words - 1)
    for reg in data_regs:
        b.li(reg, rng.randrange(1, 50))
    b.label("outer")

    for block in range(blocks):
        # A few ALU ops.
        for _ in range(rng.randrange(2, 6)):
            emit = rng.choice(_ALU_EMITTERS)
            emit(b, rng.choice(data_regs), rng.choice(data_regs),
                 rng.choice(data_regs))
        # Occasional fp work.
        if rng.random() < 0.5:
            emit = rng.choice(_FP_EMITTERS)
            emit(b, rng.choice(fp_regs), rng.choice(fp_regs),
                 rng.choice(fp_regs))
            if rng.random() < 0.5:
                b.fcvt(rng.choice(fp_regs), rng.choice(data_regs))
        # A masked load and maybe a store into the scratch region.
        addr_reg = rng.choice(data_regs)
        value_reg = rng.choice(data_regs)
        b.and_(addr_reg, addr_reg, r_mask)
        b.add(addr_reg, addr_reg, r_base)
        if rng.random() < 0.5:
            b.st(value_reg, addr_reg, 0)
        b.ld(rng.choice(data_regs), addr_reg, 0)
        # A forward branch on a computed value (data-dependent).
        skip = f"skip_{block}"
        condition = rng.choice(data_regs)
        if rng.random() < 0.5:
            b.beqz(condition, skip)
        else:
            b.bnez(condition, skip)
        for _ in range(rng.randrange(1, 4)):
            emit = rng.choice(_ALU_EMITTERS)
            emit(b, rng.choice(data_regs), rng.choice(data_regs),
                 rng.choice(data_regs))
        b.label(skip)
        # Occasionally a small counted loop.
        if rng.random() < 0.4:
            counter = counter_regs[block % len(counter_regs)]
            bound = rng.randrange(2, 6)
            loop = f"loop_{block}"
            b.li(counter, 0)
            b.label(loop)
            emit = rng.choice(_ALU_EMITTERS)
            emit(b, rng.choice(data_regs), rng.choice(data_regs),
                 counter)
            b.addi(counter, counter, 1)
            b.li(data_regs[0], bound)
            b.blt(counter, data_regs[0], loop)

    b.jmp("outer")
    return b.build()
