"""Random structured program generator and differential-testing harness.

Generates seeded, architecturally well-defined programs: straight-line
ALU blocks, loads/stores confined to a scratch region, forward branches
on computed values and bounded counted loops, closed by an outer jump so
the program runs forever (budget-terminated).

The differential harness (:func:`run_differential`) cross-checks every
timing core (baseline, CPR, MSP) under both detailed-core schedulers
(event and scan) and both exec backends over the SoA window (codegen
closures and the generic kind ladder) against the reference emulator on
the same seeded program — commit trace and final memory must match the
oracle exactly.
A mismatch comes back as a typed :class:`Divergence`; :func:`shrink`
reduces it to the smallest ``(blocks, budget)`` pair that still
reproduces, so a fuzz failure lands as a minimal repro, not a
700-instruction haystack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import fp_reg, int_reg

_ALU_EMITTERS = [
    lambda b, d, s1, s2: b.add(d, s1, s2),
    lambda b, d, s1, s2: b.sub(d, s1, s2),
    lambda b, d, s1, s2: b.xor(d, s1, s2),
    lambda b, d, s1, s2: b.and_(d, s1, s2),
    lambda b, d, s1, s2: b.or_(d, s1, s2),
    lambda b, d, s1, s2: b.mul(d, s1, s2),
    lambda b, d, s1, s2: b.slt(d, s1, s2),
]

_FP_EMITTERS = [
    lambda b, d, s1, s2: b.fadd(d, s1, s2),
    lambda b, d, s1, s2: b.fsub(d, s1, s2),
    lambda b, d, s1, s2: b.fmul(d, s1, s2),
]


def random_program(seed: int, blocks: int = 8,
                   scratch_words: int = 64) -> Program:
    """Build a random structured program for the given seed."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"fuzz-{seed}")
    data = b.data_region([rng.randrange(1, 100)
                          for _ in range(scratch_words)])

    # Register roles: r1 scratch base, r2 mask, r3..r11 data,
    # r12..r15 loop counters, f0..f5 fp data.
    r_base, r_mask = int_reg(1), int_reg(2)
    data_regs: List[int] = [int_reg(k) for k in range(3, 12)]
    counter_regs = [int_reg(k) for k in range(12, 16)]
    fp_regs = [fp_reg(k) for k in range(6)]

    b.li(r_base, data)
    b.li(r_mask, scratch_words - 1)
    for reg in data_regs:
        b.li(reg, rng.randrange(1, 50))
    b.label("outer")

    for block in range(blocks):
        # A few ALU ops.
        for _ in range(rng.randrange(2, 6)):
            emit = rng.choice(_ALU_EMITTERS)
            emit(b, rng.choice(data_regs), rng.choice(data_regs),
                 rng.choice(data_regs))
        # Occasional fp work.
        if rng.random() < 0.5:
            emit = rng.choice(_FP_EMITTERS)
            emit(b, rng.choice(fp_regs), rng.choice(fp_regs),
                 rng.choice(fp_regs))
            if rng.random() < 0.5:
                b.fcvt(rng.choice(fp_regs), rng.choice(data_regs))
        # A masked load and maybe a store into the scratch region.
        addr_reg = rng.choice(data_regs)
        value_reg = rng.choice(data_regs)
        b.and_(addr_reg, addr_reg, r_mask)
        b.add(addr_reg, addr_reg, r_base)
        if rng.random() < 0.5:
            b.st(value_reg, addr_reg, 0)
        b.ld(rng.choice(data_regs), addr_reg, 0)
        # A forward branch on a computed value (data-dependent).
        skip = f"skip_{block}"
        condition = rng.choice(data_regs)
        if rng.random() < 0.5:
            b.beqz(condition, skip)
        else:
            b.bnez(condition, skip)
        for _ in range(rng.randrange(1, 4)):
            emit = rng.choice(_ALU_EMITTERS)
            emit(b, rng.choice(data_regs), rng.choice(data_regs),
                 rng.choice(data_regs))
        b.label(skip)
        # Occasionally a small counted loop.
        if rng.random() < 0.4:
            counter = counter_regs[block % len(counter_regs)]
            bound = rng.randrange(2, 6)
            loop = f"loop_{block}"
            b.li(counter, 0)
            b.label(loop)
            emit = rng.choice(_ALU_EMITTERS)
            emit(b, rng.choice(data_regs), rng.choice(data_regs),
                 counter)
            b.addi(counter, counter, 1)
            b.li(data_regs[0], bound)
            b.blt(counter, data_regs[0], loop)

    b.jmp("outer")
    return b.build()


# --------------------------------------------------------------------- #
# Differential harness: every core x scheduler vs the emulator oracle.
# --------------------------------------------------------------------- #

#: Detailed-core schedulers the harness sweeps (they must be
#: cycle-for-cycle interchangeable, so any commit-trace difference
#: between them is a bug in one of them).
SCHEDULERS = ("event", "scan")

#: Exec backends over the SoA window: per-static-instruction codegen
#: closures vs the generic kind ladder (``SimConfig.codegen``). Both
#: must drive identical architectural state off identical columns.
BACKENDS = ("codegen", "ladder")


def fuzz_configs() -> List:
    """The three timing cores the harness checks against the oracle."""
    from repro.sim import SimConfig
    return [SimConfig.baseline(), SimConfig.cpr(), SimConfig.msp(8)]


@dataclass
class Divergence:
    """One core/scheduler disagreeing with the emulator oracle — the
    minimal facts needed to reproduce it deterministically."""

    seed: int
    blocks: int
    budget: int
    machine: str                          # SimConfig label
    scheduler: str
    kind: str                             # "stall"|"commit-trace"|"memory"
    detail: str
    config: Optional[object] = None       # the SimConfig (for recheck)
    backend: str = "codegen"              # exec backend (see BACKENDS)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "blocks": self.blocks,
                "budget": self.budget, "machine": self.machine,
                "scheduler": self.scheduler, "backend": self.backend,
                "kind": self.kind, "detail": self.detail}

    def repro_command(self) -> str:
        """One line a human can paste to replay the divergence."""
        return (f"random_program(seed={self.seed}, blocks={self.blocks})"
                f" on {self.machine}/{self.scheduler}/{self.backend}"
                f" for {self.budget} instructions")


def compare_with_oracle(commit_trace: Sequence[int],
                        oracle_trace: Sequence[int],
                        core_memory: dict,
                        oracle_memory: dict) -> Optional[Tuple[str, str]]:
    """Compare a core's committed PCs and final memory against the
    oracle's; returns ``(kind, detail)`` on the first mismatch, else
    None.  Pure so the detection logic is testable without planting a
    real simulator bug."""
    if list(commit_trace) != list(oracle_trace):
        limit = min(len(commit_trace), len(oracle_trace))
        for i in range(limit):
            if commit_trace[i] != oracle_trace[i]:
                return ("commit-trace",
                        f"commit #{i}: core pc={commit_trace[i]}, "
                        f"oracle pc={oracle_trace[i]}")
        return ("commit-trace",
                f"length mismatch: core committed {len(commit_trace)}, "
                f"oracle {len(oracle_trace)}")
    for addr in sorted(set(core_memory) | set(oracle_memory)):
        got = core_memory.get(addr, 0)
        want = oracle_memory.get(addr, 0)
        if got != want:
            return ("memory",
                    f"addr {addr}: core={got}, oracle={want}")
    return None


def check_one(seed: int, config, scheduler: str, *,
              blocks: int = 8, budget: int = 700,
              backend: str = "codegen") -> Optional[Divergence]:
    """Run one (core, scheduler, backend) cell against the emulator
    oracle; returns a :class:`Divergence` or None when they agree."""
    from repro.isa import Emulator
    from repro.sim import build_core
    program = random_program(seed, blocks=blocks)
    core = build_core(program, config.with_(scheduler=scheduler,
                                            codegen=backend == "codegen",
                                            record_commits=True))
    stats = core.run(max_instructions=budget)
    if stats.committed < budget:
        return Divergence(seed, blocks, budget, config.label, scheduler,
                          "stall", f"core stalled after "
                          f"{stats.committed}/{budget} instructions",
                          config=config, backend=backend)
    oracle = Emulator(program, trace_pcs=True)
    reference = oracle.run(max_instructions=stats.committed)
    mismatch = compare_with_oracle(core.commit_trace, reference.pc_trace,
                                   core.memory, oracle.memory)
    if mismatch is None:
        return None
    kind, detail = mismatch
    return Divergence(seed, blocks, budget, config.label, scheduler,
                      kind, detail, config=config, backend=backend)


def run_differential(seed: int, *, blocks: int = 8, budget: int = 700,
                     configs=None,
                     schedulers: Sequence[str] = SCHEDULERS,
                     backends: Sequence[str] = BACKENDS
                     ) -> List[Divergence]:
    """Sweep every core x scheduler x exec-backend cell for one seed;
    returns all divergences found (empty on a healthy simulator)."""
    divergences = []
    for config in (configs if configs is not None else fuzz_configs()):
        for scheduler in schedulers:
            for backend in backends:
                found = check_one(seed, config, scheduler,
                                  blocks=blocks, budget=budget,
                                  backend=backend)
                if found is not None:
                    divergences.append(found)
    return divergences


def shrink(divergence: Divergence,
           reproduces: Optional[Callable[[int, int],
                                         Optional[Divergence]]] = None
           ) -> Divergence:
    """Reduce a divergence to the smallest ``(blocks, budget)`` that
    still reproduces it: drop blocks one at a time, then bisect the
    instruction budget.  ``reproduces(blocks, budget)`` defaults to
    re-running the real cell; tests inject synthetic predicates."""
    if reproduces is None:
        def reproduces(blocks: int, budget: int) -> Optional[Divergence]:
            return check_one(divergence.seed, divergence.config,
                             divergence.scheduler,
                             blocks=blocks, budget=budget,
                             backend=divergence.backend)
    best = divergence
    while best.blocks > 1:
        candidate = reproduces(best.blocks - 1, best.budget)
        if candidate is None:
            break
        best = candidate
    lo, hi = 1, best.budget
    while lo < hi:
        mid = (lo + hi) // 2
        candidate = reproduces(best.blocks, mid)
        if candidate is not None:
            best, hi = candidate, mid
        else:
            lo = mid + 1
    return best
