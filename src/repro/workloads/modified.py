"""Table II: the hand-modified benchmark kernels.

The paper modified 1-3 hot loops per benchmark by hand — unrolling and
changing register allocation so consecutive renamings of a logical
register are spread across several registers — and reports IPC for the
original vs modified versions of bzip2 (generateMTFValues), twolf
(new_dbox_a), swim (calc3), mgrid (resid) and equake (smvp).

Each entry here pairs the original builder with its modified variant and
carries the paper's published context (loops unrolled, % execution time)
for the experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.program import Program
from repro.workloads.specfp import build_equake, build_mgrid, build_swim
from repro.workloads.specint import build_bzip2, build_twolf


@dataclass(frozen=True)
class Table2Entry:
    """One row of Table II."""

    benchmark: str
    function: str
    loops_unrolled: int        # paper's "Loops unrolled" column
    exec_time_pct: int         # paper's "% Execution time" column
    original: Callable[..., Program]
    modified: Callable[..., Program]


def _modified(builder: Callable[..., Program]) -> Callable[..., Program]:
    def build(seed=None, **kwargs) -> Program:
        if seed is not None:
            kwargs["seed"] = seed
        return builder(modified=True, **kwargs)
    return build


TABLE2_ENTRIES = [
    Table2Entry("bzip2", "generateMTFValues", 1, 65,
                build_bzip2, _modified(build_bzip2)),
    Table2Entry("twolf", "new_dbox_a", 3, 19,
                build_twolf, _modified(build_twolf)),
    Table2Entry("swim", "calc3", 0, 25,
                build_swim, _modified(build_swim)),
    Table2Entry("mgrid", "resid", 0, 52,
                build_mgrid, _modified(build_mgrid)),
    Table2Entry("equake", "smvp", 0, 54,
                build_equake, _modified(build_equake)),
]

MODIFIED_BUILDERS = {
    f"{entry.benchmark}_mod": entry.modified for entry in TABLE2_ENTRIES
}
