"""Baseline out-of-order processor.

Table I column 1: a "reasonably standard out-of-order, single-thread,
superscalar processor" — 128-entry ROB, 48-entry IQ, 96 int + 96 fp
physical registers managed with a RAT and a free list, retire width 3,
single-level store queue. Branch recovery restores a RAT snapshot taken
when the branch dispatched; exceptions recover precisely from the
architectural RAT at the ROB head.

In-flight state is the shared structure-of-arrays window
(``self.w``); the fused run loop binds the columns as locals and
never touches a per-instruction object.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional

from repro.branch.base import Prediction
from repro.branch.gshare import GsharePredictor
from repro.branch.tage import TagePredictor
from repro.isa.registers import NUM_INT_REGS, NUM_LOGICAL_REGS, is_int_reg
from repro.isa.semantics import effective_address
from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore, \
    _ADDR_MASK, _FLD, _HALT
from repro.pipeline.stats import SimStats


class BaselineProcessor(OutOfOrderCore):
    """ROB-based precise out-of-order core."""

    #: ROB 128 + fetch buffer 16 + fetch width bounds the live seq span,
    #: so a small ring suffices (it grows on demand regardless).
    window_capacity = 256

    #: Exec codegen reads operands straight out of ``phys_value``.
    codegen_flavor = "direct"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        num_phys = config.phys_int + config.phys_fp
        self.num_phys = num_phys
        self.phys_value: List = [0] * num_phys
        self.phys_ready: List[bool] = [True] * num_phys

        # Identity initial mapping: logical int i -> phys i, logical fp j
        # -> phys_int + j.
        self.rat: List[int] = [0] * NUM_LOGICAL_REGS
        for lr in range(NUM_LOGICAL_REGS):
            if is_int_reg(lr):
                self.rat[lr] = lr
            else:
                self.rat[lr] = config.phys_int + (lr - NUM_INT_REGS)
                self.phys_value[self.rat[lr]] = 0.0
        self.arch_rat: List[int] = list(self.rat)

        self.int_free: List[int] = list(
            range(NUM_INT_REGS, config.phys_int))
        self.fp_free: List[int] = list(
            range(config.phys_int + NUM_INT_REGS, num_phys))

        if self._sched_event:
            # Publish the flat register file to the event scheduler's
            # direct operand paths (handles are plain ints; reads have
            # no side effects).
            self._ready_table = self.phys_ready
            self._value_table = self.phys_value
            self._read_direct = True

    # ------------------------------------------------------------------ #
    # Registers.
    # ------------------------------------------------------------------ #

    def handle_ready(self, handle: int) -> bool:
        return self.phys_ready[handle]

    def seed_register(self, logical: int, value) -> None:
        # Identity initial mapping: the checkpointed architectural value
        # lands directly in the currently mapped physical register.
        self.phys_value[self.rat[logical]] = value

    def read_operand(self, handle: int):
        return self.phys_value[handle]

    def peek_operand(self, handle: int):
        return self.phys_value[handle]

    def write_result(self, slot: int) -> None:
        w = self.w
        self.phys_value[w.dest[slot]] = w.res[slot]
        self.phys_ready[w.dest[slot]] = True

    def _free_list_for(self, logical: int) -> List[int]:
        return self.int_free if is_int_reg(logical) else self.fp_free

    # ------------------------------------------------------------------ #
    # Dispatch.
    # ------------------------------------------------------------------ #

    def dispatch_blocked(self, seq: int, slot: int, pc: int,
                         moved: int) -> Optional[str]:
        if len(self.in_flight) >= self.config.rob_size:
            return "rob_full"
        dec = self._dec
        if dec.wreg[pc] and not (self.int_free
                                 if dec.dest[pc] < NUM_INT_REGS
                                 else self.fp_free):
            return "registers_full"
        return None

    def rename(self, seq: int, slot: int, pc: int) -> None:
        dec = self._dec
        rat = self.rat
        w = self.w
        nsrc = dec.nsrc[pc]
        if nsrc:
            w.h0[slot] = rat[dec.s0[pc]]
            if nsrc > 1:
                w.h1[slot] = rat[dec.s1[pc]]
        if dec.wreg[pc]:
            dest = dec.dest[pc]
            free = self.int_free if dest < NUM_INT_REGS else self.fp_free
            new = free.pop()
            self.phys_ready[new] = False
            w.dest[slot] = new
            rat[dest] = new
        kind = dec.kind[pc]
        if kind == 1 or kind == 2 or kind == 3:
            # Snapshot for precise branch recovery.
            w.tag[slot] = list(rat)

    # ------------------------------------------------------------------ #
    # Commit: in order from the ROB head, up to retire_width per cycle.
    # ------------------------------------------------------------------ #

    def commit_stage(self, now: int) -> None:
        in_flight = self.in_flight
        w = self.w
        mask = w.mask
        w_st = w.st
        if not in_flight or not w_st[in_flight[0] & mask] & 2:
            return
        dec = self._dec
        arch_rat = self.arch_rat
        retired = 0
        retire_width = self.config.retire_width
        while retired < retire_width and in_flight:
            s = in_flight[0]
            slot = s & mask
            if not w_st[slot] & 2:
                break
            if not self.commit_one(s, slot, now):
                return  # exception recovery took over
            in_flight.popleft()
            pc = w.pc[slot]
            if dec.wreg[pc]:
                dest = dec.dest[pc]
                previous = arch_rat[dest]
                arch_rat[dest] = w.dest[slot]
                if dest < NUM_INT_REGS:
                    self.int_free.append(previous)
                else:
                    self.fp_free.append(previous)
            elif dec.kind[pc] == 5:
                self.sq.commit_up_to(s, self.commit_store_write)
            retired += 1
            if self.done:
                return

    # ------------------------------------------------------------------ #
    # Fused event-scheduler run loop.
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int = 50_000,
            max_cycles: Optional[int] = None) -> SimStats:
        # The fused loop inlines the common per-cycle path; runs that
        # need the rare machinery (exception injection, commit tracing,
        # telemetry hooks) or the scan oracle take the generic
        # stage-method loop.
        if (not self._sched_event or self.exception_plan
                or self.commit_trace is not None
                or self.tracer is not None
                or self._metrics is not None):
            return super().run(max_instructions, max_cycles)
        return self._run_fused(max_instructions, max_cycles)

    def _run_fused(self, max_instructions: int,
                   max_cycles: Optional[int]) -> SimStats:
        """Event-scheduler cycle loop with the baseline machine's stage
        bodies inlined (commit -> writeback -> issue -> dispatch ->
        fetch, then the idle skip).

        This is a line-for-line transcription of
        ``OutOfOrderCore.cycle`` + the baseline ``commit_stage`` /
        ``rename`` specialised for this machine's flat register file,
        with the per-instruction virtual calls flattened into plain
        column indexing — the same fused-hot-loop treatment the
        emulator's ``run_fast`` got.  Behaviour must stay bit-identical
        to the generic loop: the scheduler-equivalence tests run this
        exact path against the scan oracle.
        """
        cycle_cap = max_cycles if max_cycles is not None \
            else max_instructions * 200 + 100_000
        stats = self.stats
        if not self._codegen_built:
            self._maybe_build_codegen()
        # Window growth rebuilds the closures *in place*
        # (``_exec_fns[:] = ...``), so the local binding stays live.
        exec_fns = self._exec_fns
        fetch = self.fetch
        buffer = fetch.buffer
        in_flight = self.in_flight
        window = self._ready_list
        completions = self._completions
        waiting = self._waiting
        addr_watch = self._addr_watch
        phys_value = self.phys_value
        phys_ready = self.phys_ready
        arch_rat = self.arch_rat
        int_free = self.int_free
        fp_free = self.fp_free
        sq = self.sq
        sq_entries = sq._entries
        sq_unknown = sq._unknown_addr
        sq_pending = sq._pending_data
        lb = self.load_buffer
        memory = self.memory
        load_latency = self.hierarchy.load_latency
        dcache = self.hierarchy.dcache
        dc_sets = dcache._sets
        dc_line_shift = dcache._line_shift
        dc_set_mask = dcache.set_mask
        dc_set_bits = dcache._set_bits
        dcache_hit_cycles = self.hierarchy.dcache_hit
        fus = self.fus
        fu_used = fus._used
        fu_limits = fus._limits
        issue_width = fus.issue_width
        config = self.config
        retire_width = config.retire_width
        rename_width = config.rename_width
        iq_size = config.iq_size
        rob_size = config.rob_size
        budget = config.max_issue_scan
        commit_up_to = sq.commit_up_to
        commit_store_write = self.commit_store_write
        sq_forward = sq.forward
        sq_execute = sq.execute
        sq_allocate = sq.allocate
        sq_set_address = sq.set_address
        sq_is_full = sq.is_full
        resolve_control = self._resolve_control
        recover_from_branch = self.recover_from_branch
        predictor = self.predictor
        predictor_predict = predictor.predict
        predictor_update = predictor.update
        predictor_restore = predictor.restore
        predictor_history = predictor.get_history
        # Inline-predict fast path for the stock gshare front end (a
        # subclass could override predict, so match the exact type).
        if type(predictor) is GsharePredictor:
            gs_pht = predictor.pht
            gs_imask = predictor.index_mask
            gs_hmask = predictor.history_mask
        else:
            gs_pht = gs_imask = gs_hmask = None
        # TAGE exposes its raw (train-path possibly unmasked) ghr;
        # an attribute read + mask beats a get_history call in fetch.
        if type(predictor) is TagePredictor:
            tage_hmask = predictor.history_mask
        else:
            tage_hmask = None
        btb_predict = self.btb.predict
        instruction_latency = self.hierarchy.instruction_latency
        icache = self.hierarchy.icache
        ic_sets = icache._sets
        ic_line_shift = icache._line_shift
        ic_set_mask = icache.set_mask
        ic_set_bits = icache._set_bits
        icache_hit_cycles = self.hierarchy.icache_hit
        fetch_width = fetch.width
        buffer_capacity = fetch.buffer_capacity

        # Static program columns (indexed by PC).
        dec = self._dec
        P_size = dec.size
        P_kind = dec.kind
        P_code = dec.code
        P_s0, P_s1, P_nsrc = dec.s0, dec.s1, dec.nsrc
        P_dest, P_wreg = dec.dest, dec.wreg
        P_imm, P_target = dec.imm, dec.target
        P_fu, P_lat = dec.fu, dec.lat
        P_eval, P_branch = dec.evalf, dec.branchf

        # In-flight columns (indexed by seq & mask; the column *lists*
        # are stable across window growth — only the mask changes).
        w = self.w
        mask = w.mask
        W_sq, W_pc, W_st = w.sq, w.pc, w.st
        W_h0, W_h1, W_wc = w.h0, w.h1, w.wc
        W_dest, W_res, W_sval = w.dest, w.res, w.sval
        W_eic, W_pred, W_ptk, W_ptg = w.eic, w.pred, w.ptk, w.ptg
        W_atk, W_atg, W_ma, W_se = w.atk, w.atg, w.ma, w.se
        W_fin = w.fin
        W_tag, W_ghr = w.tag, w.ghr
        oldest_live = self._oldest_live

        now = self.now
        # Hot counters as locals; flushed back to stats after the loop.
        cycles = stats.cycles
        committed = stats.committed
        while (not self.done and committed < max_instructions
               and cycles < cycle_cap):
            cycles += 1
            recoveries_before = stats.recoveries

            # ---------------- commit (baseline ROB retire) ------------ #
            commits = 0
            if in_flight and W_st[in_flight[0] & mask] & 2:
                ordinal = self.commit_ordinal
                while commits < retire_width and in_flight:
                    s = in_flight[0]
                    slot = s & mask
                    if not W_st[slot] & 2:
                        break
                    ordinal += 1
                    pc = W_pc[slot]
                    kind = P_kind[pc]
                    if kind == 4:
                        lb.occupied -= 1
                    elif P_code[pc] == _HALT:
                        self.done = True
                    in_flight.popleft()
                    if P_wreg[pc]:
                        dest = P_dest[pc]
                        previous = arch_rat[dest]
                        arch_rat[dest] = W_dest[slot]
                        if dest < NUM_INT_REGS:
                            int_free.append(previous)
                        else:
                            fp_free.append(previous)
                    elif kind == 5:
                        commit_up_to(s, commit_store_write)
                    commits += 1
                    if self.done:
                        break
                self.commit_ordinal = ordinal
                committed += commits
                if self.done:
                    now += 1
                    break

            # ---------------- writeback ------------------------------- #
            wb_live = False
            bucket = completions.pop(now, None)
            if bucket:
                if len(bucket) > 1:
                    bucket.sort()
                for s in bucket:
                    slot = s & mask
                    st = W_st[slot]
                    # One pass: stale (slot recycled), pre-squashed and
                    # mid-bucket-recovered entries all fail here, exactly
                    # like the old prefilter + recheck pair.
                    if W_sq[slot] != s or st & 4:
                        continue
                    wb_live = True
                    W_st[slot] = st | 2
                    pc = W_pc[slot]
                    kind = P_kind[pc]
                    if P_wreg[pc]:
                        dest = W_dest[slot]
                        result = W_res[slot]
                        phys_value[dest] = result
                        phys_ready[dest] = True
                        waiters = waiting.pop(dest, None)
                        if waiters:
                            for ws in waiters:
                                wslot = ws & mask
                                if (W_sq[wslot] != ws
                                        or W_st[wslot] & 4):
                                    continue
                                count = W_wc[wslot] - 1
                                W_wc[wslot] = count
                                if count == 0:
                                    if (not window
                                            or window[-1] < ws):
                                        window.append(ws)
                                    else:
                                        insort(window, ws)
                        watchers = (addr_watch.pop(dest, None)
                                    if addr_watch else None)
                        if watchers:
                            for ws in watchers:
                                wslot = ws & mask
                                if (W_sq[wslot] == ws
                                        and not W_st[wslot] & 4):
                                    imm = P_imm[W_pc[wslot]]
                                    if type(result) is int:
                                        addr = ((result + imm)
                                                & _ADDR_MASK)
                                    else:
                                        addr = effective_address(
                                            result, imm)
                                    sq_set_address(W_se[wslot], addr)
                    elif kind == 5:
                        sq_execute(W_se[slot], W_ma[slot],
                                   W_sval[slot])
                    if kind == 1:
                        # _resolve_control's conditional-branch body,
                        # inline (the baseline's on_branch_resolved hook
                        # is the base no-op).
                        stats.branches += 1
                        taken = W_atk[slot]
                        prediction = W_pred[slot]
                        predictor_update(prediction, taken)
                        if taken != W_ptk[slot]:
                            stats.branch_mispredictions += 1
                            prediction.taken = taken
                            predictor_restore(prediction)
                            W_st[slot] |= 8
                            stats.recoveries += 1
                            recover_from_branch(s, slot, now)
                    elif kind == 3:
                        # BTB-indirect resolution stays out of line
                        # (kind 2 direct jumps never mispredict: the
                        # generic resolve is a no-op for them).
                        resolve_control(s, slot, pc, kind, now)

            # ---------------- issue (event window walk) --------------- #
            issued = 0
            dropped = False
            next_timed = None
            n = len(window)
            if n:
                fu_used[0] = fu_used[1] = fu_used[2] = fu_used[3] = 0
                slots = issue_width
                if budget < n:
                    n = budget
                # The SQ only changes between walks (dispatch allocates,
                # writeback resolves), and unresolved-address seqs
                # iterate in ascending order, so "any older store with
                # unknown address" is one compare against the first key.
                sq_oldest_unknown = -1
                for _q in sq_unknown:
                    sq_oldest_unknown = _q
                    break
                read = 0
                write = 0
                while read < n:
                    s = window[read]
                    read += 1
                    slot = s & mask
                    st = W_st[slot]
                    if W_sq[slot] != s or st & 5:
                        dropped = True
                        continue
                    eic = W_eic[slot]
                    if eic > now:
                        if next_timed is None or eic < next_timed:
                            next_timed = eic
                        window[write] = s
                        write += 1
                        continue
                    pc = W_pc[slot]
                    kind = P_kind[pc]
                    if kind == 4:
                        # Address memo (see _issue_stage_event): computed
                        # once, reused across blocked re-visits and by
                        # the codegen closure below.
                        addr = W_ma[slot]
                        if addr < 0:
                            base = phys_value[W_h0[slot]]
                            if type(base) is int:
                                addr = (base + P_imm[pc]) & _ADDR_MASK
                            else:
                                addr = effective_address(base, P_imm[pc])
                            W_ma[slot] = addr
                        # StoreQueue.load_blocked, inline.
                        if -1 < sq_oldest_unknown < s:
                            window[write] = s
                            write += 1
                            continue
                        if sq_pending:
                            pend = sq_pending.get(addr)
                            if pend is not None:
                                blocked = False
                                for _e in pend:
                                    if _e.seq < s:
                                        blocked = True
                                        break
                                if blocked:
                                    window[write] = s
                                    write += 1
                                    continue
                    code = P_fu[pc]
                    if fu_used[code] >= fu_limits[code]:
                        window[write] = s
                        write += 1
                        continue
                    # -------- issue + execute ------------------------- #
                    W_st[slot] = st | 1
                    issued += 1
                    fu_used[code] = fu_used[code] + 1
                    if exec_fns is not None:
                        # Per-static-instruction codegen closure: operand
                        # reads, semantics, latency and the completion
                        # push compiled into one call (no kind ladder).
                        exec_fns[pc](s, slot, now)
                    else:
                        # Generic inline ladder (config.codegen off).
                        if kind == 0:
                            nsrc = P_nsrc[pc]
                            if nsrc == 2:
                                values = (phys_value[W_h0[slot]],
                                          phys_value[W_h1[slot]])
                            elif nsrc:
                                values = (phys_value[W_h0[slot]],)
                            else:
                                values = ()
                            W_res[slot] = P_eval[pc](values, P_imm[pc])
                            latency = P_lat[pc]
                        elif kind == 1:
                            if P_nsrc[pc] == 2:
                                values = (phys_value[W_h0[slot]],
                                          phys_value[W_h1[slot]])
                            else:
                                values = (phys_value[W_h0[slot]],)
                            W_atk[slot] = taken = P_branch[pc](values)
                            W_atg[slot] = P_target[pc] if taken else pc + 1
                            latency = P_lat[pc]
                        elif kind == 4:
                            if sq_entries:
                                forwarded, penalty = sq_forward(addr, s)
                            else:
                                forwarded = None
                            is_fld = P_code[pc] == _FLD
                            if forwarded is not None:
                                W_res[slot] = (float(forwarded) if is_fld
                                               else forwarded)
                                latency = 1 + penalty
                            else:
                                value = memory.get(addr, 0)
                                W_res[slot] = (float(value) if is_fld
                                               else value)
                                # D-cache hit path, inline (Cache.access).
                                line = (addr << 3) >> dc_line_shift
                                tag = line >> dc_set_bits
                                lines = dc_sets[line & dc_set_mask]
                                if tag in lines:
                                    dcache.hits += 1
                                    lines.move_to_end(tag)
                                    latency = dcache_hit_cycles
                                else:
                                    latency = load_latency(addr)
                        elif kind == 5:
                            base = phys_value[W_h1[slot]]
                            W_sval[slot] = phys_value[W_h0[slot]]
                            if type(base) is int:
                                W_ma[slot] = (base + P_imm[pc]) & _ADDR_MASK
                            else:
                                W_ma[slot] = effective_address(base,
                                                               P_imm[pc])
                            latency = 1
                        elif kind == 2:
                            W_atk[slot] = True
                            W_atg[slot] = P_target[pc]
                            latency = P_lat[pc]
                        else:
                            W_atk[slot] = True
                            W_atg[slot] = int(phys_value[W_h0[slot]])
                            latency = P_lat[pc]
                        finish = now + latency
                        W_fin[slot] = finish
                        fbucket = completions.get(finish)
                        if fbucket is None:
                            completions[finish] = [s]
                        else:
                            fbucket.append(s)
                    slots -= 1
                    if slots <= 0:
                        break
                if write != read:
                    del window[write:read]
                fus._issued_total = issue_width - slots
                if issued:
                    stats.issued += issued
                    self.iq_count -= issued

            # ---------------- dispatch (rename + allocate) ------------ #
            moved = 0
            dispatched = 0
            stall_reason = None
            if buffer:
                rat = self.rat
                iq_count = self.iq_count
                # Consume the buffer through a read index; one slice
                # delete at the end instead of a left shift per pop.
                rd = 0
                blen = len(buffer)
                while moved < rename_width and rd < blen:
                    s = buffer[rd]
                    slot = s & mask
                    pc = W_pc[slot]
                    kind = P_kind[pc]
                    if kind == 6:            # NOP/HALT
                        rd += 1
                        W_st[slot] |= 2
                        in_flight.append(s)
                        dispatched += 1
                        moved += 1
                        continue
                    if iq_count >= iq_size:
                        stall_reason = "iq_full"
                        break
                    writes = P_wreg[pc]
                    if kind == 4:
                        if lb.occupied >= lb.capacity:
                            stall_reason = "load_buffer_full"
                            break
                    elif kind == 5 and sq_is_full():
                        stall_reason = "store_queue_full"
                        break
                    if len(in_flight) >= rob_size:
                        stall_reason = "rob_full"
                        break
                    if writes:
                        free = (int_free if P_dest[pc] < NUM_INT_REGS
                                else fp_free)
                        if not free:
                            stall_reason = "registers_full"
                            break
                    rd += 1
                    # ------ rename + wire, inline and unrolled -------- #
                    nsrc = P_nsrc[pc]
                    wait_count = 0
                    if nsrc == 2:
                        h0 = rat[P_s0[pc]]
                        h1 = rat[P_s1[pc]]
                        W_h0[slot] = h0
                        W_h1[slot] = h1
                        if not phys_ready[h0]:
                            wait_count = 1
                            lst = waiting.get(h0)
                            if lst is None:
                                waiting[h0] = [s]
                            else:
                                lst.append(s)
                        if not phys_ready[h1]:
                            wait_count += 1
                            lst = waiting.get(h1)
                            if lst is None:
                                waiting[h1] = [s]
                            else:
                                lst.append(s)
                    elif nsrc:
                        h1 = None
                        h0 = rat[P_s0[pc]]
                        W_h0[slot] = h0
                        if not phys_ready[h0]:
                            wait_count = 1
                            lst = waiting.get(h0)
                            if lst is None:
                                waiting[h0] = [s]
                            else:
                                lst.append(s)
                    else:
                        h1 = None
                    if writes:
                        new = free.pop()
                        phys_ready[new] = False
                        W_dest[slot] = new
                        rat[P_dest[pc]] = new
                    if kind == 1 or kind == 2 or kind == 3:
                        W_tag[slot] = list(rat)  # precise-recovery snapshot
                    W_wc[slot] = wait_count
                    W_eic[slot] = now + 1
                    if kind == 5:
                        W_se[slot] = entry = sq_allocate(s)
                        if phys_ready[h1]:
                            base = phys_value[h1]
                            if type(base) is int:
                                addr = (base + P_imm[pc]) & _ADDR_MASK
                            else:
                                addr = effective_address(base, P_imm[pc])
                            sq_set_address(entry, addr)
                        else:
                            lst = addr_watch.get(h1)
                            if lst is None:
                                addr_watch[h1] = [s]
                            else:
                                lst.append(s)
                    elif kind == 4:
                        W_ma[slot] = -1   # address memo for the walk
                        lb.occupied += 1
                    in_flight.append(s)
                    iq_count += 1
                    dispatched += 1
                    if wait_count == 0:
                        window.append(s)
                    moved += 1
                if rd:
                    del buffer[:rd]
                self.iq_count = iq_count
                stats.dispatched += dispatched
                if moved == 0 and stall_reason is not None:
                    stats.dispatch_stall_cycles[stall_reason] += 1
                else:
                    stall_reason = None

            # ---------------- fetch (FetchEngine.cycle, inline) ------- #
            fetched = 0
            if not fetch.halted:
                if now < fetch.stalled_until:
                    fetch.icache_stall_cycles += 1
                elif len(buffer) < buffer_capacity:
                    pc = fetch.pc
                    # I-cache hit path, inline (instruction_latency /
                    # Cache.access; instructions sit at 1 << 40 + pc).
                    line = (((1 << 40) + pc) << 3) >> ic_line_shift
                    tag = line >> ic_set_bits
                    lines = ic_sets[line & ic_set_mask]
                    if tag in lines:
                        icache.hits += 1
                        lines.move_to_end(tag)
                        latency = icache_hit_cycles
                    else:
                        latency = instruction_latency(pc)
                    if latency > 1:
                        fetch.stalled_until = now + latency
                        fetch.icache_stall_cycles += 1
                    else:
                        next_seq = fetch.next_seq
                        if next_seq + fetch_width > w.grow_barrier:
                            w.ensure_room(oldest_live(),
                                          next_seq + fetch_width)
                            mask = w.mask
                        # History only moves when a branch is predicted,
                        # so read it once per group and refresh after
                        # each (not-taken) prediction.
                        if tage_hmask is not None:
                            ghr_now = predictor.ghr & tage_hmask
                        else:
                            ghr_now = predictor_history()
                        for _ in range(fetch_width):
                            if len(buffer) >= buffer_capacity:
                                break
                            if pc < 0 or pc >= P_size:
                                # Wrong-path PC fell off the program.
                                fetch.halted = True
                                break
                            slot = next_seq & mask
                            W_sq[slot] = next_seq
                            W_pc[slot] = pc
                            W_st[slot] = 0
                            W_ghr[slot] = ghr_now
                            buffer.append(next_seq)
                            next_seq += 1
                            fetched += 1
                            kind = P_kind[pc]
                            if kind >= 6:
                                if P_code[pc] == _HALT:
                                    fetch.halted = True
                                    break
                                pc += 1
                                continue
                            if kind == 1:
                                if gs_pht is not None:
                                    # gshare predict, inline.
                                    index = (pc ^ ghr_now) & gs_imask
                                    taken = gs_pht[index] >= 2
                                    prediction = Prediction(
                                        pc, taken, meta=(ghr_now, index))
                                    ghr_now = (((ghr_now << 1)
                                                | (1 if taken else 0))
                                               & gs_hmask)
                                    predictor.ghr = ghr_now
                                else:
                                    prediction = predictor_predict(pc)
                                    taken = prediction.taken
                                    if tage_hmask is not None:
                                        # Specialised predict just
                                        # masked and stored the ghr.
                                        ghr_now = predictor.ghr
                                    else:
                                        ghr_now = predictor_history()
                                W_pred[slot] = prediction
                                W_ptk[slot] = taken
                                if taken:
                                    W_ptg[slot] = pc = P_target[pc]
                                    break
                                W_ptg[slot] = pc + 1
                            elif kind == 2:
                                W_ptk[slot] = True
                                W_ptg[slot] = pc = P_target[pc]
                                break
                            elif kind == 3:
                                W_ptk[slot] = True
                                predicted = btb_predict(pc)
                                # BTB miss: fall through (will recover).
                                W_ptg[slot] = pc = (
                                    predicted if predicted is not None
                                    else pc + 1)
                                break
                            pc += 1
                        fetch.pc = pc
                        fetch.next_seq = next_seq
                        fetch.fetched += fetched

            self.now = now = now + 1

            # ---------------- idle skip ------------------------------- #
            # (baseline ``commit_settled``/``on_dispatch_stall`` are the
            # base no-ops, so the skip needs no arch hooks here.)
            if (commits == 0 and not wb_live and not issued
                    and not dispatched and not dropped and not fetched
                    and stats.recoveries == recoveries_before):
                bound = min(completions) if completions else None
                if (not fetch.halted
                        and len(buffer) < fetch.buffer_capacity):
                    resume = fetch.stalled_until
                    if bound is None or resume < bound:
                        bound = resume
                if next_timed is not None and (bound is None
                                               or next_timed < bound):
                    bound = next_timed
                horizon = now + (cycle_cap - cycles)
                if bound is None or bound > horizon:
                    bound = horizon
                if bound > now:
                    count = bound - now
                    cycles += count
                    self.skipped_cycles += count
                    if stall_reason is not None:
                        stats.dispatch_stall_cycles[stall_reason] += count
                    fetch.skip_cycles(now, count)
                    self.now = now = now + count
        self.now = now
        stats.cycles = cycles
        stats.committed = committed
        return stats

    # ------------------------------------------------------------------ #
    # Recovery.
    # ------------------------------------------------------------------ #

    def _release_squashed(self, squashed: List[int]) -> None:
        w = self.w
        mask = w.mask
        dec = self._dec
        for s in squashed:
            slot = s & mask
            pc = w.pc[slot]
            if dec.wreg[pc]:
                self._free_list_for(dec.dest[pc]).append(w.dest[slot])

    def recover_from_branch(self, seq: int, slot: int, now: int) -> None:
        w = self.w
        target = w.atg[slot]
        squashed = self.squash_after(seq, seq)
        self._release_squashed(squashed)
        # In place: the codegen'd closures bind the RAT list itself.
        self.rat[:] = w.tag[slot]
        self.fetch.redirect(target, now)

    def take_exception(self, seq: int, slot: int, now: int) -> None:
        # This is the ROB head: everything older has committed, so the
        # architectural RAT is exactly the precise recovery state.
        pc = self.w.pc[slot]
        squashed = self.squash_after(seq - 1, FAULT_NONE)
        self._release_squashed(squashed)
        self.rat[:] = self.arch_rat
        self.repair_history_at(slot)
        self.fetch.redirect(pc, now)
