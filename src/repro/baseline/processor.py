"""Baseline out-of-order processor.

Table I column 1: a "reasonably standard out-of-order, single-thread,
superscalar processor" — 128-entry ROB, 48-entry IQ, 96 int + 96 fp
physical registers managed with a RAT and a free list, retire width 3,
single-level store queue. Branch recovery restores a RAT snapshot taken
when the branch dispatched; exceptions recover precisely from the
architectural RAT at the ROB head.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.registers import NUM_INT_REGS, NUM_LOGICAL_REGS, is_int_reg
from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore
from repro.pipeline.dyninst import DynInst


class BaselineProcessor(OutOfOrderCore):
    """ROB-based precise out-of-order core."""

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        num_phys = config.phys_int + config.phys_fp
        self.num_phys = num_phys
        self.phys_value: List = [0] * num_phys
        self.phys_ready: List[bool] = [True] * num_phys

        # Identity initial mapping: logical int i -> phys i, logical fp j
        # -> phys_int + j.
        self.rat: List[int] = [0] * NUM_LOGICAL_REGS
        for lr in range(NUM_LOGICAL_REGS):
            if is_int_reg(lr):
                self.rat[lr] = lr
            else:
                self.rat[lr] = config.phys_int + (lr - NUM_INT_REGS)
                self.phys_value[self.rat[lr]] = 0.0
        self.arch_rat: List[int] = list(self.rat)

        self.int_free: List[int] = list(
            range(NUM_INT_REGS, config.phys_int))
        self.fp_free: List[int] = list(
            range(config.phys_int + NUM_INT_REGS, num_phys))

    # ------------------------------------------------------------------ #
    # Registers.
    # ------------------------------------------------------------------ #

    def handle_ready(self, handle: int) -> bool:
        return self.phys_ready[handle]

    def seed_register(self, logical: int, value) -> None:
        # Identity initial mapping: the checkpointed architectural value
        # lands directly in the currently mapped physical register.
        self.phys_value[self.rat[logical]] = value

    def read_operand(self, handle: int):
        return self.phys_value[handle]

    def peek_operand(self, handle: int):
        return self.phys_value[handle]

    def write_result(self, di: DynInst) -> None:
        self.phys_value[di.dest_handle] = di.result
        self.phys_ready[di.dest_handle] = True

    def _free_list_for(self, logical: int) -> List[int]:
        return self.int_free if is_int_reg(logical) else self.fp_free

    # ------------------------------------------------------------------ #
    # Dispatch.
    # ------------------------------------------------------------------ #

    def dispatch_blocked(self, di: DynInst, moved: int) -> Optional[str]:
        if len(self.in_flight) >= self.config.rob_size:
            return "rob_full"
        inst = di.inst
        if inst.writes_reg and not self._free_list_for(inst.dest):
            return "registers_full"
        return None

    def rename(self, di: DynInst) -> None:
        inst = di.inst
        di.src_handles = [self.rat[src] for src in inst.srcs]
        if inst.writes_reg:
            new = self._free_list_for(inst.dest).pop()
            self.phys_ready[new] = False
            di.dest_handle = new
            self.rat[inst.dest] = new
        if inst.is_control:
            # Snapshot for precise branch recovery.
            di.tag = list(self.rat)

    # ------------------------------------------------------------------ #
    # Commit: in order from the ROB head, up to retire_width per cycle.
    # ------------------------------------------------------------------ #

    def commit_stage(self, now: int) -> None:
        retired = 0
        while (retired < self.config.retire_width and self.in_flight
               and self.in_flight[0].completed):
            di = self.in_flight[0]
            if not self.commit_one(di, now):
                return  # exception recovery took over
            self.in_flight.popleft()
            inst = di.inst
            if inst.writes_reg:
                previous = self.arch_rat[inst.dest]
                self.arch_rat[inst.dest] = di.dest_handle
                self._free_list_for(inst.dest).append(previous)
            elif inst.is_store:
                self.sq.commit_up_to(di.seq, self.commit_store_write)
            retired += 1
            if self.done:
                return

    # ------------------------------------------------------------------ #
    # Recovery.
    # ------------------------------------------------------------------ #

    def _release_squashed(self, squashed: List[DynInst]) -> None:
        for di in squashed:
            if di.inst.writes_reg:
                self._free_list_for(di.inst.dest).append(di.dest_handle)

    def recover_from_branch(self, di: DynInst, now: int) -> None:
        squashed = self.squash_after(di.seq, di.seq)
        self._release_squashed(squashed)
        self.rat = list(di.tag)
        self.fetch.redirect(di.actual_target, now)

    def take_exception(self, di: DynInst, now: int) -> None:
        # ``di`` is the ROB head: everything older has committed, so the
        # architectural RAT is exactly the precise recovery state.
        squashed = self.squash_after(di.seq - 1, FAULT_NONE)
        self._release_squashed(squashed)
        self.rat = list(self.arch_rat)
        self.repair_history_at(di)
        self.fetch.redirect(di.pc, now)
