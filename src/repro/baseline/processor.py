"""Baseline out-of-order processor.

Table I column 1: a "reasonably standard out-of-order, single-thread,
superscalar processor" — 128-entry ROB, 48-entry IQ, 96 int + 96 fp
physical registers managed with a RAT and a free list, retire width 3,
single-level store queue. Branch recovery restores a RAT snapshot taken
when the branch dispatched; exceptions recover precisely from the
architectural RAT at the ROB head.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional

from repro.isa.opcodes import Op
from repro.isa.registers import NUM_INT_REGS, NUM_LOGICAL_REGS, is_int_reg
from repro.isa.semantics import effective_address
from repro.pipeline.core_base import FAULT_NONE, OutOfOrderCore, \
    _ADDR_MASK, _SEQ
from repro.pipeline.dyninst import DynInst
from repro.pipeline.stats import SimStats


class BaselineProcessor(OutOfOrderCore):
    """ROB-based precise out-of-order core."""

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        num_phys = config.phys_int + config.phys_fp
        self.num_phys = num_phys
        self.phys_value: List = [0] * num_phys
        self.phys_ready: List[bool] = [True] * num_phys

        # Identity initial mapping: logical int i -> phys i, logical fp j
        # -> phys_int + j.
        self.rat: List[int] = [0] * NUM_LOGICAL_REGS
        for lr in range(NUM_LOGICAL_REGS):
            if is_int_reg(lr):
                self.rat[lr] = lr
            else:
                self.rat[lr] = config.phys_int + (lr - NUM_INT_REGS)
                self.phys_value[self.rat[lr]] = 0.0
        self.arch_rat: List[int] = list(self.rat)

        self.int_free: List[int] = list(
            range(NUM_INT_REGS, config.phys_int))
        self.fp_free: List[int] = list(
            range(config.phys_int + NUM_INT_REGS, num_phys))

        if self._sched_event:
            # Publish the flat register file to the event scheduler's
            # direct operand paths (handles are plain ints; reads have
            # no side effects).
            self._ready_table = self.phys_ready
            self._value_table = self.phys_value
            self._read_direct = True

    # ------------------------------------------------------------------ #
    # Registers.
    # ------------------------------------------------------------------ #

    def handle_ready(self, handle: int) -> bool:
        return self.phys_ready[handle]

    def seed_register(self, logical: int, value) -> None:
        # Identity initial mapping: the checkpointed architectural value
        # lands directly in the currently mapped physical register.
        self.phys_value[self.rat[logical]] = value

    def read_operand(self, handle: int):
        return self.phys_value[handle]

    def peek_operand(self, handle: int):
        return self.phys_value[handle]

    def write_result(self, di: DynInst) -> None:
        self.phys_value[di.dest_handle] = di.result
        self.phys_ready[di.dest_handle] = True

    def _free_list_for(self, logical: int) -> List[int]:
        return self.int_free if is_int_reg(logical) else self.fp_free

    # ------------------------------------------------------------------ #
    # Dispatch.
    # ------------------------------------------------------------------ #

    def dispatch_blocked(self, di: DynInst, moved: int) -> Optional[str]:
        if len(self.in_flight) >= self.config.rob_size:
            return "rob_full"
        inst = di.inst
        if inst.writes_reg and not (self.int_free
                                    if inst.dest < NUM_INT_REGS
                                    else self.fp_free):
            return "registers_full"
        return None

    def rename(self, di: DynInst) -> None:
        inst = di.inst
        rat = self.rat
        di.src_handles = [rat[src] for src in inst.srcs]
        if inst.writes_reg:
            dest = inst.dest
            free = self.int_free if dest < NUM_INT_REGS else self.fp_free
            new = free.pop()
            self.phys_ready[new] = False
            di.dest_handle = new
            rat[dest] = new
        if inst.is_control:
            # Snapshot for precise branch recovery.
            di.tag = list(rat)

    # ------------------------------------------------------------------ #
    # Commit: in order from the ROB head, up to retire_width per cycle.
    # ------------------------------------------------------------------ #

    def commit_stage(self, now: int) -> None:
        in_flight = self.in_flight
        if not in_flight or not in_flight[0].completed:
            return
        arch_rat = self.arch_rat
        retired = 0
        retire_width = self.config.retire_width
        while (retired < retire_width and in_flight
               and in_flight[0].completed):
            di = in_flight[0]
            if not self.commit_one(di, now):
                return  # exception recovery took over
            in_flight.popleft()
            inst = di.inst
            if inst.writes_reg:
                dest = inst.dest
                previous = arch_rat[dest]
                arch_rat[dest] = di.dest_handle
                if dest < NUM_INT_REGS:
                    self.int_free.append(previous)
                else:
                    self.fp_free.append(previous)
            elif inst.is_store:
                self.sq.commit_up_to(di.seq, self.commit_store_write)
            retired += 1
            if self.done:
                return

    # ------------------------------------------------------------------ #
    # Fused event-scheduler run loop.
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int = 50_000,
            max_cycles: Optional[int] = None) -> SimStats:
        # The fused loop inlines the common per-cycle path; runs that
        # need the rare machinery (exception injection, commit tracing,
        # telemetry hooks) or the scan oracle take the generic
        # stage-method loop.
        if (not self._sched_event or self.exception_plan
                or self.commit_trace is not None
                or self.tracer is not None
                or self._metrics is not None):
            return super().run(max_instructions, max_cycles)
        return self._run_fused(max_instructions, max_cycles)

    def _run_fused(self, max_instructions: int,
                   max_cycles: Optional[int]) -> SimStats:
        """Event-scheduler cycle loop with the baseline machine's stage
        bodies inlined (commit -> writeback -> issue -> dispatch ->
        fetch, then the idle skip).

        This is a line-for-line transcription of
        ``OutOfOrderCore.cycle`` + the baseline ``commit_stage`` /
        ``rename`` specialised for this machine's flat register file,
        with the per-instruction virtual calls flattened into local
        operations — the same fused-hot-loop treatment the emulator's
        ``run_fast`` got.  Behaviour must stay bit-identical to the
        generic loop: the scheduler-equivalence tests run this exact
        path against the scan oracle.
        """
        cycle_cap = max_cycles if max_cycles is not None \
            else max_instructions * 200 + 100_000
        stats = self.stats
        fetch = self.fetch
        buffer = fetch.buffer
        in_flight = self.in_flight
        window = self._ready_list
        completions = self._completions
        waiting = self._waiting
        addr_watch = self._addr_watch
        phys_value = self.phys_value
        phys_ready = self.phys_ready
        arch_rat = self.arch_rat
        int_free = self.int_free
        fp_free = self.fp_free
        sq = self.sq
        sq_entries = sq._entries
        sq_unknown = sq._unknown_addr
        sq_pending = sq._pending_data
        lb = self.load_buffer
        memory = self.memory
        load_latency = self.hierarchy.load_latency
        dcache = self.hierarchy.dcache
        dc_sets = dcache._sets
        dc_line_shift = dcache._line_shift
        dc_set_mask = dcache.set_mask
        dc_set_bits = dcache._set_bits
        dcache_hit_cycles = self.hierarchy.dcache_hit
        fus = self.fus
        fu_used = fus._used
        fu_limits = fus._limits
        issue_width = fus.issue_width
        config = self.config
        retire_width = config.retire_width
        rename_width = config.rename_width
        iq_size = config.iq_size
        rob_size = config.rob_size
        budget = config.max_issue_scan
        commit_up_to = sq.commit_up_to
        commit_store_write = self.commit_store_write
        sq_forward = sq.forward
        sq_execute = sq.execute
        sq_allocate = sq.allocate
        sq_set_address = sq.set_address
        sq_load_blocked = sq.load_blocked
        sq_is_full = sq.is_full
        resolve_control = self._resolve_control
        predictor = self.predictor
        predictor_predict = predictor.predict
        predictor_history = predictor.get_history
        btb_predict = self.btb.predict
        program_fetch = self.program.fetch
        instruction_latency = self.hierarchy.instruction_latency
        icache = self.hierarchy.icache
        ic_sets = icache._sets
        ic_line_shift = icache._line_shift
        ic_set_mask = icache.set_mask
        ic_set_bits = icache._set_bits
        icache_hit_cycles = self.hierarchy.icache_hit
        fetch_width = fetch.width
        buffer_capacity = fetch.buffer_capacity
        FLD = Op.FLD
        HALT = Op.HALT
        JMP = Op.JMP
        JR = Op.JR

        now = self.now
        while (not self.done and stats.committed < max_instructions
               and stats.cycles < cycle_cap):
            stats.cycles += 1
            recoveries_before = stats.recoveries

            # ---------------- commit (baseline ROB retire) ------------ #
            commits = 0
            if in_flight and in_flight[0].completed:
                ordinal = self.commit_ordinal
                while commits < retire_width and in_flight:
                    di = in_flight[0]
                    if not di.completed:
                        break
                    ordinal += 1
                    di.committed = True
                    inst = di.inst
                    if inst.is_load:
                        lb.occupied -= 1
                    elif inst.op is HALT:
                        self.done = True
                    in_flight.popleft()
                    if inst.writes_reg:
                        dest = inst.dest
                        previous = arch_rat[dest]
                        arch_rat[dest] = di.dest_handle
                        if dest < NUM_INT_REGS:
                            int_free.append(previous)
                        else:
                            fp_free.append(previous)
                    elif inst.is_store:
                        commit_up_to(di.seq, commit_store_write)
                    commits += 1
                    if self.done:
                        break
                self.commit_ordinal = ordinal
                stats.committed += commits
                if self.done:
                    now += 1
                    break

            # ---------------- writeback ------------------------------- #
            wb_live = False
            bucket = completions.pop(now, None)
            if bucket:
                if len(bucket) > 1:
                    bucket.sort(key=_SEQ)
                live = [d for d in bucket if not d.squashed]
                if live:
                    wb_live = True
                    for di in live:
                        if di.squashed:
                            continue  # an earlier completion recovered
                        di.completed = True
                        inst = di.inst
                        if inst.writes_reg:
                            dest = di.dest_handle
                            phys_value[dest] = di.result
                            phys_ready[dest] = True
                            waiters = waiting.pop(dest, None)
                            if waiters:
                                for waiter in waiters:
                                    if waiter.squashed:
                                        continue
                                    waiter.wait_count -= 1
                                    if waiter.wait_count == 0:
                                        if (not window or
                                                window[-1].seq < waiter.seq):
                                            window.append(waiter)
                                        else:
                                            insort(window, waiter, key=_SEQ)
                            watchers = (addr_watch.pop(dest, None)
                                        if addr_watch else None)
                            if watchers:
                                for store in watchers:
                                    if not store.squashed:
                                        base = di.result
                                        if type(base) is int:
                                            addr = ((base + store.inst.imm)
                                                    & _ADDR_MASK)
                                        else:
                                            addr = effective_address(
                                                base, store.inst.imm)
                                        sq_set_address(store.store_entry,
                                                       addr)
                        elif inst.is_store:
                            sq_execute(di.store_entry, di.mem_addr,
                                       di.src_values[0])
                        if inst.is_control:
                            resolve_control(di, now)

            # ---------------- issue (event window walk) --------------- #
            issued = 0
            dropped = False
            next_timed = None
            n = len(window)
            if n:
                fu_used[0] = fu_used[1] = fu_used[2] = fu_used[3] = 0
                slots = issue_width
                if budget < n:
                    n = budget
                read = 0
                write = 0
                while read < n:
                    di = window[read]
                    read += 1
                    if di.squashed or di.issued:
                        dropped = True
                        continue
                    eic = di.earliest_issue_cycle
                    if eic > now:
                        if next_timed is None or eic < next_timed:
                            next_timed = eic
                        window[write] = di
                        write += 1
                        continue
                    inst = di.inst
                    kind = inst.kind
                    handles = di.src_handles
                    if kind == 4:
                        base = phys_value[handles[0]]
                        if type(base) is int:
                            addr = (base + inst.imm) & _ADDR_MASK
                        else:
                            addr = effective_address(base, inst.imm)
                        if ((sq_unknown or sq_pending)
                                and sq_load_blocked(addr, di.seq)):
                            window[write] = di
                            write += 1
                            continue
                    code = inst.fu_code
                    if fu_used[code] >= fu_limits[code]:
                        window[write] = di
                        write += 1
                        continue
                    # -------- issue + execute, inline ----------------- #
                    di.issued = True
                    issued += 1
                    fu_used[code] = fu_used[code] + 1
                    if kind == 0:
                        di.src_values = values = [phys_value[h]
                                                  for h in handles]
                        di.result = inst.eval_fn(values, inst.imm)
                        latency = inst.latency
                    elif kind == 1:
                        di.src_values = values = [phys_value[h]
                                                  for h in handles]
                        di.actual_taken = taken = inst.branch_fn(values)
                        di.actual_target = (inst.target if taken
                                            else di.pc + 1)
                        latency = inst.latency
                    elif kind == 4:
                        di.src_values = (base,)
                        di.mem_addr = addr
                        if sq_entries:
                            forwarded, penalty = sq_forward(addr, di.seq)
                        else:
                            forwarded = None
                        if forwarded is not None:
                            di.result = (float(forwarded)
                                         if inst.op is FLD else forwarded)
                            latency = 1 + penalty
                        else:
                            value = memory.get(addr, 0)
                            di.result = (float(value) if inst.op is FLD
                                         else value)
                            # D-cache hit path, inline (Cache.access).
                            line = (addr << 3) >> dc_line_shift
                            tag = line >> dc_set_bits
                            lines = dc_sets[line & dc_set_mask]
                            if tag in lines:
                                dcache.hits += 1
                                lines.move_to_end(tag)
                                latency = dcache_hit_cycles
                            else:
                                latency = load_latency(addr)
                    elif kind == 5:
                        value_handle, base_handle = handles
                        base = phys_value[base_handle]
                        di.src_values = (phys_value[value_handle], base)
                        if type(base) is int:
                            di.mem_addr = (base + inst.imm) & _ADDR_MASK
                        else:
                            di.mem_addr = effective_address(base, inst.imm)
                        latency = 1
                    elif kind == 2:
                        di.src_values = ()
                        di.actual_taken = True
                        di.actual_target = inst.target
                        latency = inst.latency
                    else:
                        di.src_values = values = [phys_value[h]
                                                  for h in handles]
                        di.actual_taken = True
                        di.actual_target = int(values[0])
                        latency = inst.latency
                    finish = now + latency
                    fbucket = completions.get(finish)
                    if fbucket is None:
                        completions[finish] = [di]
                    else:
                        fbucket.append(di)
                    slots -= 1
                    if slots <= 0:
                        break
                if write != read:
                    del window[write:read]
                fus._issued_total = issue_width - slots
                if issued:
                    stats.issued += issued
                    self.iq_count -= issued

            # ---------------- dispatch (rename + allocate) ------------ #
            moved = 0
            dispatched = 0
            stall_reason = None
            if buffer:
                rat = self.rat
                iq_count = self.iq_count
                while moved < rename_width and buffer:
                    di = buffer[0]
                    inst = di.inst
                    if inst.kind == 6:       # NOP/HALT
                        del buffer[0]
                        di.completed = True
                        in_flight.append(di)
                        dispatched += 1
                        moved += 1
                        continue
                    if iq_count >= iq_size:
                        stall_reason = "iq_full"
                        break
                    writes = inst.writes_reg
                    if inst.is_load:
                        if lb.occupied >= lb.capacity:
                            stall_reason = "load_buffer_full"
                            break
                    elif inst.is_store and sq_is_full():
                        stall_reason = "store_queue_full"
                        break
                    if len(in_flight) >= rob_size:
                        stall_reason = "rob_full"
                        break
                    if writes:
                        free = (int_free if inst.dest < NUM_INT_REGS
                                else fp_free)
                        if not free:
                            stall_reason = "registers_full"
                            break
                    del buffer[0]
                    # ------ rename + wire, inline and unrolled -------- #
                    srcs = inst.srcs
                    wait_count = 0
                    if len(srcs) == 2:
                        h0 = rat[srcs[0]]
                        h1 = rat[srcs[1]]
                        di.src_handles = (h0, h1)
                        if not phys_ready[h0]:
                            wait_count = 1
                            lst = waiting.get(h0)
                            if lst is None:
                                waiting[h0] = [di]
                            else:
                                lst.append(di)
                        if not phys_ready[h1]:
                            wait_count += 1
                            lst = waiting.get(h1)
                            if lst is None:
                                waiting[h1] = [di]
                            else:
                                lst.append(di)
                    elif srcs:
                        h1 = None
                        h0 = rat[srcs[0]]
                        di.src_handles = (h0,)
                        if not phys_ready[h0]:
                            wait_count = 1
                            lst = waiting.get(h0)
                            if lst is None:
                                waiting[h0] = [di]
                            else:
                                lst.append(di)
                    else:
                        h1 = None
                        di.src_handles = ()
                    if writes:
                        new = free.pop()
                        phys_ready[new] = False
                        di.dest_handle = new
                        rat[inst.dest] = new
                    if inst.is_control:
                        di.tag = list(rat)   # precise-recovery snapshot
                    di.wait_count = wait_count
                    di.dispatch_cycle = now
                    di.earliest_issue_cycle = now + 1
                    if inst.is_store:
                        di.store_entry = entry = sq_allocate(di.seq)
                        if phys_ready[h1]:
                            base = phys_value[h1]
                            if type(base) is int:
                                addr = (base + inst.imm) & _ADDR_MASK
                            else:
                                addr = effective_address(base, inst.imm)
                            sq_set_address(entry, addr)
                        else:
                            lst = addr_watch.get(h1)
                            if lst is None:
                                addr_watch[h1] = [di]
                            else:
                                lst.append(di)
                    elif inst.is_load:
                        lb.occupied += 1
                    in_flight.append(di)
                    iq_count += 1
                    dispatched += 1
                    if wait_count == 0:
                        window.append(di)
                    moved += 1
                self.iq_count = iq_count
                stats.dispatched += dispatched
                if moved == 0 and stall_reason is not None:
                    stats.dispatch_stall_cycles[stall_reason] += 1
                else:
                    stall_reason = None

            # ---------------- fetch (FetchEngine.cycle, inline) ------- #
            fetched = 0
            if not fetch.halted:
                if now < fetch.stalled_until:
                    fetch.icache_stall_cycles += 1
                elif len(buffer) < buffer_capacity:
                    pc = fetch.pc
                    # I-cache hit path, inline (instruction_latency /
                    # Cache.access; instructions sit at 1 << 40 + pc).
                    line = (((1 << 40) + pc) << 3) >> ic_line_shift
                    tag = line >> ic_set_bits
                    lines = ic_sets[line & ic_set_mask]
                    if tag in lines:
                        icache.hits += 1
                        lines.move_to_end(tag)
                        latency = icache_hit_cycles
                    else:
                        latency = instruction_latency(pc)
                    if latency > 1:
                        fetch.stalled_until = now + latency
                        fetch.icache_stall_cycles += 1
                    else:
                        next_seq = fetch.next_seq
                        for _ in range(fetch_width):
                            if len(buffer) >= buffer_capacity:
                                break
                            inst = program_fetch(pc)
                            if inst is None:
                                # Wrong-path PC fell off the program.
                                fetch.halted = True
                                break
                            di = DynInst(next_seq, pc, inst)
                            di.ghr_at_fetch = predictor_history()
                            next_seq += 1
                            fetched += 1
                            buffer.append(di)
                            op = inst.op
                            if op is HALT:
                                fetch.halted = True
                                break
                            if inst.is_branch:
                                prediction = predictor_predict(pc)
                                di.prediction = prediction
                                di.predicted_taken = prediction.taken
                                if prediction.taken:
                                    di.predicted_target = pc = inst.target
                                    break
                                di.predicted_target = pc + 1
                            elif op is JMP:
                                di.predicted_taken = True
                                di.predicted_target = pc = inst.target
                                break
                            elif op is JR:
                                di.predicted_taken = True
                                predicted = btb_predict(pc)
                                # BTB miss: fall through (will recover).
                                di.predicted_target = pc = (
                                    predicted if predicted is not None
                                    else pc + 1)
                                break
                            pc += 1
                        fetch.pc = pc
                        fetch.next_seq = next_seq
                        fetch.fetched += fetched

            self.now = now = now + 1

            # ---------------- idle skip ------------------------------- #
            # (baseline ``commit_settled``/``on_dispatch_stall`` are the
            # base no-ops, so the skip needs no arch hooks here.)
            if (commits == 0 and not wb_live and not issued
                    and not dispatched and not dropped and not fetched
                    and stats.recoveries == recoveries_before):
                bound = min(completions) if completions else None
                if (not fetch.halted
                        and len(buffer) < fetch.buffer_capacity):
                    resume = fetch.stalled_until
                    if bound is None or resume < bound:
                        bound = resume
                if next_timed is not None and (bound is None
                                               or next_timed < bound):
                    bound = next_timed
                horizon = now + (cycle_cap - stats.cycles)
                if bound is None or bound > horizon:
                    bound = horizon
                if bound > now:
                    count = bound - now
                    stats.cycles += count
                    self.skipped_cycles += count
                    if stall_reason is not None:
                        stats.dispatch_stall_cycles[stall_reason] += count
                    fetch.skip_cycles(now, count)
                    self.now = now = now + count
        self.now = now
        return stats

    # ------------------------------------------------------------------ #
    # Recovery.
    # ------------------------------------------------------------------ #

    def _release_squashed(self, squashed: List[DynInst]) -> None:
        for di in squashed:
            if di.inst.writes_reg:
                self._free_list_for(di.inst.dest).append(di.dest_handle)

    def recover_from_branch(self, di: DynInst, now: int) -> None:
        squashed = self.squash_after(di.seq, di.seq)
        self._release_squashed(squashed)
        self.rat = list(di.tag)
        self.fetch.redirect(di.actual_target, now)

    def take_exception(self, di: DynInst, now: int) -> None:
        # ``di`` is the ROB head: everything older has committed, so the
        # architectural RAT is exactly the precise recovery state.
        squashed = self.squash_after(di.seq - 1, FAULT_NONE)
        self._release_squashed(squashed)
        self.rat = list(self.arch_rat)
        self.repair_history_at(di)
        self.fetch.redirect(di.pc, now)
