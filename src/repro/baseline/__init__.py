"""Baseline ROB-based out-of-order processor (Table I column 1)."""

from repro.baseline.processor import BaselineProcessor

__all__ = ["BaselineProcessor"]
