"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Simulate one workload on one machine and print the statistics.
``compare``
    Run a workload across the standard machine grid.
``experiment``
    Regenerate one of the paper's figures/tables by name. ``--jobs``
    shards the grid across processes; results are cached on disk
    (``--no-cache`` / ``--cache-dir`` to control).
``campaign``
    Batch engine: ``campaign run`` simulates an ad-hoc workload x
    machine grid; ``campaign status`` (``--json`` for the
    machine-readable snapshot) / ``campaign clear`` inspect and drop
    the persistent result cache.
``serve``
    Long-running campaign daemon: an HTTP JSON API (``POST
    /campaigns``, ``GET /campaigns/<id>[/results]``, ``/healthz``,
    ``/readyz``) over the same result cache, with a crash-safe job
    spool, leased workers and per-client admission quotas — see
    :mod:`repro.sim.service`.
``bench``
    Measure simulator throughput (inst/s per mode), write the
    ``BENCH_throughput.json`` trajectory artifact, and optionally
    ``--check`` for regressions against a committed baseline.
``trace``
    Dump a per-instruction pipeline lifecycle trace in the Kanata
    text format (viewable in the Konata pipeline viewer).
``list``
    List workloads, machines and experiments.
``listing``
    Print a workload's assembly listing.

Diagnostic chatter on stderr honours ``REPRO_LOG=quiet|warn|debug``
(default ``warn``; errors always print). ``run --metrics out.jsonl``
writes the per-interval time-series (:mod:`repro.obs.metrics`), and
``campaign run --profile`` / ``campaign status --profile`` record and
show the per-phase wall-clock breakdown (:mod:`repro.obs.profile`).

``run``, ``compare``, ``experiment`` and ``campaign run`` all accept
the sampling flags ``--sample [MODE]`` (measurement windows over a
fast functional fast-forward: bare ``--sample`` = periodic windows,
``--sample simpoint`` = BBV-clustered representative windows), ``--ff
N`` (fixed-offset window), ``--interval K``, ``--period P``,
``--clusters C`` and ``--bbv-dim D`` — see :mod:`repro.sim.sampling`.

Examples::

    python -m repro run bzip2 --arch msp --banks 16 --predictor tage
    python -m repro run bzip2 --arch msp --sample -n 100000
    python -m repro run gzip --sample simpoint --clusters 4 -n 100000
    python -m repro compare mcf -n 5000
    python -m repro experiment figure8 --jobs 4
    python -m repro experiment figure7 --sample
    python -m repro campaign run --suite specint --machines baseline,msp:16
    python -m repro campaign run --suite all --sample simpoint
    python -m repro campaign status
    python -m repro listing gzip | head -40
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.defaults import EnvConfigError, default_instructions, \
    default_sample_instructions
from repro.obs import human_bytes, log
from repro.sim import SimConfig, simulate
from repro.sim import experiments as exp
from repro.sim.campaign import CampaignError, CampaignInterrupted, \
    CampaignJournal, ResultStore
from repro.sim.sampling import MODES, SamplingError, SamplingParams
from repro.workloads import SPECFP, SPECINT, all_workloads, get_program

EXPERIMENTS = {
    "figure6": lambda n, **kw: exp.figure6(n, **kw).to_table(),
    "figure7": lambda n, **kw: exp.figure7(n, **kw).to_table(),
    "figure8": lambda n, **kw: exp.figure8(n, **kw).to_table(),
    "table2": lambda n, **kw: _format_table2(exp.table2(n, **kw)),
    "figure9": lambda n, **kw: _format_figure9(exp.figure9(n, **kw)),
    "table3": lambda n, **kw: _format_table3(),
    "lcs": lambda n, **kw: exp.ablation_lcs_delay(
        instructions=n, **kw).to_table(),
    "rename": lambda n, **kw: exp.ablation_rename_width(
        instructions=n, **kw).to_table(),
    "cpr-registers": lambda n, **kw: exp.ablation_cpr_registers(
        instructions=n, **kw).to_table(),
}


def _format_table2(rows) -> str:
    lines = ["== Table II: original vs modified kernels (TAGE)"]
    for key, row in rows.items():
        cells = {k: v for k, v in row.items()
                 if k not in ("loops_unrolled", "exec_time_pct")}
        body = "  ".join(f"{k}={v:.3f}" for k, v in cells.items())
        lines.append(f"{key:40s} {body}")
    return "\n".join(lines)


def _format_figure9(data) -> str:
    lines = ["== Figure 9: executed-instruction breakdown"]
    for bench, cells in data.items():
        lines.append(bench)
        for machine, row in cells.items():
            lines.append(
                f"  {machine:18s} correct={row['correct_path']:7d} "
                f"reexec={row['correct_path_reexecuted']:6d} "
                f"wrong={row['wrong_path']:6d}")
    summary = exp.figure9_summary(data)
    for predictor, reduction in summary.items():
        lines.append(f"16-SP executes {100 * reduction:.1f}% fewer "
                     f"instructions than CPR ({predictor})")
    return "\n".join(lines)


def _format_table3() -> str:
    from repro.power import section51_area, table3
    lines = ["== Table III: register-file access power (mW | FO4)"]
    for tech, rows in table3().items():
        lines.append(tech)
        for config, row in rows.items():
            lines.append(f"  {config:34s} "
                         f"W {row['write_power_mw']:5.2f}|"
                         f"{row['write_time_fo4']:4.2f}  "
                         f"R {row['read_power_mw']:5.2f}|"
                         f"{row['read_time_fo4']:4.2f}")
    area = section51_area()
    lines.append(f"Sec 5.1 area (45nm): MSP "
                 f"{area['msp_512_banked_mm2']:.3f} mm^2, CPR "
                 f"{area['cpr_256_fullport_mm2']:.3f} mm^2")
    return "\n".join(lines)


def _config_from_args(args) -> SimConfig:
    if args.arch == "baseline":
        return SimConfig.baseline(predictor=args.predictor)
    if args.arch == "cpr":
        return SimConfig.cpr(predictor=args.predictor,
                             registers=args.registers)
    if args.arch == "msp":
        return SimConfig.msp(args.banks, predictor=args.predictor,
                             arbitration=not args.no_arbitration)
    if args.arch == "ideal":
        return SimConfig.msp_ideal(predictor=args.predictor)
    raise SystemExit(f"unknown architecture {args.arch!r}")


def _standard_grid(predictor: str) -> List[SimConfig]:
    return [SimConfig.baseline(predictor=predictor),
            SimConfig.cpr(predictor=predictor),
            SimConfig.msp(8, predictor=predictor),
            SimConfig.msp(16, predictor=predictor),
            SimConfig.msp_ideal(predictor=predictor)]


def _get_program_or_exit(name: str):
    """Friendly lookup: unknown names print one line, not a traceback."""
    try:
        return get_program(name)
    except ValueError:
        log(f"unknown workload {name!r}; choose from "
            f"{' '.join(all_workloads())}", "error")
        raise SystemExit(2)


def _sampling_from_args(args) -> "SamplingParams":
    """--sample/--ff/--interval/--period combined with REPRO_SAMPLE*.
    Invalid schedules print one line (no traceback) and exit 2."""
    try:
        return SamplingParams.from_cli(
            sample=getattr(args, "sample", False),
            ff=getattr(args, "ff", None),
            interval=getattr(args, "interval", None),
            period=getattr(args, "period", None),
            clusters=getattr(args, "clusters", None),
            bbv_dim=getattr(args, "bbv_dim", None))
    except SamplingError as exc:
        log(f"bad sampling parameters: {exc}", "error")
        raise SystemExit(2)


def _budget(args, sampling) -> int:
    """-n/--instructions, or the shared defaults (sampled runs default
    to a ~30x larger represented budget)."""
    if args.instructions is not None:
        return args.instructions
    return (default_sample_instructions() if sampling
            else default_instructions())


def cmd_run(args) -> int:
    config = _config_from_args(args)
    sampling = _sampling_from_args(args)
    budget = _budget(args, sampling)
    metrics = None
    if args.metrics:
        metrics = args.metrics_interval if args.metrics_interval else True
    try:
        stats = simulate(_get_program_or_exit(args.workload), config,
                         max_instructions=budget, sampling=sampling,
                         metrics=metrics)
    except SamplingError as exc:
        log(f"bad sampling parameters: {exc}", "error")
        return 2
    print(f"{args.workload} on {config.label} "
          f"({budget} instructions"
          f"{', sampled ' + sampling.mode if sampling else ''})")
    for key, value in stats.summary().items():
        print(f"  {key:24s} {value}")
    if stats.bank_stall_cycles:
        from repro.isa import reg_name
        top = ", ".join(f"{reg_name(r)}={c}"
                        for r, c in stats.top_bank_stalls(3))
        print(f"  {'top_bank_stalls':24s} {top}")
    if args.metrics:
        rows = getattr(stats, "interval_metrics", None) or []
        with open(args.metrics, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
        log(f"metrics: {len(rows)} interval row(s) -> {args.metrics}")
    return 0


def cmd_compare(args) -> int:
    program = _get_program_or_exit(args.workload)
    sampling = _sampling_from_args(args)
    budget = _budget(args, sampling)
    print(f"{'machine':>12s} {'IPC':>7s} {'mispred':>8s} "
          f"{'reexec':>7s} {'wrong':>7s}")
    for config in _standard_grid(args.predictor):
        try:
            stats = simulate(program, config, max_instructions=budget,
                             sampling=sampling)
        except SamplingError as exc:
            log(f"bad sampling parameters: {exc}", "error")
            return 2
        print(f"{config.label:>12s} {stats.ipc:7.3f} "
              f"{stats.misprediction_rate:8.3f} "
              f"{stats.correct_path_reexecuted:7d} "
              f"{stats.wrong_path_executed:7d}")
    return 0


#: Experiments that bypass the campaign engine (analytic models only).
NON_CAMPAIGN_EXPERIMENTS = {"table3"}


def _campaign_kwargs(args) -> dict:
    """Shared --jobs/--no-cache/--cache-dir/--timeout/--sample
    plumbing."""
    return dict(jobs=args.jobs, cache_dir=args.cache_dir,
                use_cache=False if args.no_cache else None,
                timeout=args.timeout, retries=args.retries,
                sampling=_sampling_from_args(args),
                checkpoints=False if args.no_checkpoints else None)


def cmd_experiment(args) -> int:
    if args.name not in EXPERIMENTS:
        log(f"unknown experiment {args.name!r}; "
            f"choose from {' '.join(sorted(EXPERIMENTS))}", "error")
        return 2
    campaign = _campaign_kwargs(args)
    simulated = 0

    def _progress(line: str) -> None:
        nonlocal simulated
        simulated += 1
        if args.verbose:
            log(line)

    campaign["progress"] = _progress
    try:
        text = EXPERIMENTS[args.name](args.instructions, **campaign)
    except SamplingError as exc:
        log(f"bad sampling parameters: {exc}", "error")
        return 2
    except CampaignInterrupted as exc:
        return _interrupted_exit(exc)
    except CampaignError as exc:
        log(f"campaign failed: {exc}", "error")
        return 1
    if (args.name not in NON_CAMPAIGN_EXPERIMENTS
            and not args.no_cache and simulated == 0):
        # Make it visible that nothing was simulated, so stale-looking
        # numbers are traceable to the cache rather than the simulator.
        log("cache: all cells served from the result cache "
            "(--no-cache to resimulate)")
    print(text)
    return 0


def cmd_list(args) -> int:
    print("workloads (specint):", " ".join(SPECINT))
    print("workloads (specfp): ", " ".join(SPECFP))
    modified = [w for w in all_workloads() if w.endswith("_mod")]
    print("modified (Table II):", " ".join(modified))
    print("architectures: baseline cpr msp ideal")
    print("experiments:", " ".join(sorted(EXPERIMENTS)))
    return 0


def cmd_listing(args) -> int:
    print(_get_program_or_exit(args.workload).listing())
    return 0


# --------------------------------------------------------------------- #
# campaign: batch engine + persistent result cache.
# --------------------------------------------------------------------- #

_SUITES = {"specint": SPECINT, "specfp": SPECFP}


def _machine_from_token(token: str, predictor: str) -> SimConfig:
    """Parse a --machines token: baseline | cpr[:regs] | msp:n | ideal.
    Shares :meth:`SimConfig.from_token` with the service API so both
    surfaces speak (and reject) the same grammar."""
    try:
        return SimConfig.from_token(token, predictor=predictor)
    except ValueError as exc:
        log(str(exc), "error")
        raise SystemExit(2)


def _interrupted_exit(exc: CampaignInterrupted) -> int:
    """Conventional 128+signum exit for a drained campaign."""
    import signal as _signal
    log(f"campaign interrupted: {exc}", "warn")
    try:
        return 128 + _signal.Signals[exc.signal_name].value
    except KeyError:
        return 130


def cmd_campaign_run(args) -> int:
    if args.resume and args.no_cache:
        log("--resume needs the result cache and journal; "
            "drop --no-cache", "error")
        return 2
    if args.workloads:
        benchmarks = args.workloads.split(",")
        for name in benchmarks:
            _get_program_or_exit(name)
    else:
        benchmarks = []
        for suite in (_SUITES if args.suite == "all"
                      else [args.suite]):
            benchmarks += _SUITES[suite]
    configs = [_machine_from_token(token, args.predictor)
               for token in args.machines.split(",")]
    campaign = _campaign_kwargs(args)
    campaign["profile"] = True if args.profile else None
    campaign["resume"] = args.resume
    if args.verbose:
        campaign["progress"] = lambda line: log(line)
    try:
        result = exp.run_grid(
            "campaign", benchmarks, configs, args.instructions,
            **campaign)
    except SamplingError as exc:
        log(f"bad sampling parameters: {exc}", "error")
        return 2
    except CampaignInterrupted as exc:
        return _interrupted_exit(exc)
    except CampaignError as exc:
        log(f"campaign failed: {exc}", "error")
        return 1
    if result.cache_hits:
        log(f"cache: {result.cache_hits} hit(s), "
            f"{result.simulated} simulated")
    if result.retried_attempts or result.quarantined:
        log(f"faults: {result.retried_attempts} retried attempt(s), "
            f"{result.quarantined} quarantined job(s)")
    if result.checkpoint_hits or result.ff_skipped or result.ff_executed:
        # Checkpoint-store provenance: `ff executed 0` is the proof a
        # warm grid paid no functional execution at all.
        log(f"checkpoints: {result.checkpoint_hits} window hit(s), "
            f"ff executed {result.ff_executed}, "
            f"skipped {result.ff_skipped}")
    if result.phase is not None and result.phase.seconds:
        log("phases (wall-clock per simulation layer):")
        log(result.phase.format(indent="  "))
    print(result.to_table())
    return 0


def cmd_bench(args) -> int:
    from repro.sim import bench
    baseline = None
    if args.check:
        # A --check run with no usable baseline is a hard error, not a
        # skipped check: silently passing would let the run write a
        # fresh record (the default --output equals --baseline) and
        # self-ratify whatever rates it happened to measure.  Validate
        # *before* measuring — the benchmark takes minutes and would be
        # wasted on a baseline that can never gate.
        try:
            baseline = bench.load_json(args.baseline)
        except FileNotFoundError:
            log(f"bench: --check needs a committed baseline but "
                f"{args.baseline} does not exist; generate one with "
                f"`repro bench --output {args.baseline}` (no --check) "
                f"and commit it", "error")
            return 1
        except json.JSONDecodeError:
            log(f"bench: --check baseline {args.baseline} is empty or "
                f"not valid JSON; regenerate it with `repro bench "
                f"--output {args.baseline}` (no --check) and commit it",
                "error")
            return 1
        modes_present = (baseline.get("modes")
                         if isinstance(baseline, dict) else None) or {}
        if not any(mode in modes_present for mode in bench.GATED_MODES):
            log(f"bench: --check baseline {args.baseline} records none "
                f"of the gated modes {list(bench.GATED_MODES)}; "
                f"regenerate it with `repro bench --output "
                f"{args.baseline}` (no --check) and commit it", "error")
            return 1
    modes = list(bench.MODES)
    if args.ref:
        modes += list(bench.REFERENCE_MODES)
    emulate_n = args.instructions or 200_000
    record = bench.measure(
        workload=args.workload, emulate_n=emulate_n,
        detail_n=max(1000, emulate_n // 10), sampled_n=emulate_n,
        modes=modes, repeats=args.repeats)
    print(bench.format_table(record))
    failures = []
    if args.check:
        failures = bench.check_regressions(record, baseline,
                                           tolerance=args.tolerance)
    if failures:
        # Never persist a failing record: the default --output equals
        # the default --baseline, so writing here would replace the
        # committed baseline with the regressed rates and make the
        # regression self-ratifying on the next run.
        for failure in failures:
            log(f"bench: {failure}", "error")
        if args.output:
            log(f"bench: not writing {args.output} "
                f"(regression check failed)", "error")
        return 1
    if args.output:
        bench.write_json(args.output, record)
        print(f"wrote {args.output}")
    return 0


def cmd_campaign_status(args) -> int:
    from repro.sim.artifacts import ArtifactStore
    if getattr(args, "json", False):
        from repro.sim.campaign.status import status_snapshot
        print(json.dumps(status_snapshot(args.cache_dir),
                         sort_keys=True, indent=2))
        return 0
    status = ResultStore(args.cache_dir).status()
    print(f"cache   {status['path']}")
    print(f"entries {status['entries']}")
    print(f"bytes   {status['bytes']} ({human_bytes(status['bytes'])})")
    artifacts = ArtifactStore(args.cache_dir).status()
    kinds = ", ".join(f"{kind} {count}" for kind, count
                      in sorted(artifacts["kinds"].items()))
    print(f"artifacts {artifacts['path']}")
    print(f"  blobs  {artifacts['blobs']}"
          + (f" ({kinds})" if kinds else ""))
    print(f"  bytes  {artifacts['bytes']} "
          f"({human_bytes(artifacts['bytes'])})")
    print(f"  hits   {artifacts['hits']}")
    print(f"  misses {artifacts['misses']}")
    journal = CampaignJournal(args.cache_dir)
    receipts = journal.receipts()
    if receipts:
        counts = journal.summary()
        print(f"journal {journal.path}")
        print(f"  receipts {len(receipts)} "
              f"(ok {counts['ok']}, retried {counts['retried']}, "
              f"quarantined {counts['quarantined']})")
        for receipt in receipts.values():
            if receipt.outcome == "quarantined":
                print(f"  quarantined {receipt.label}: "
                      f"{receipt.error_class} after "
                      f"{receipt.attempts} attempt(s)")
    if args.profile:
        from repro.obs import PhaseProfile
        from repro.sim.campaign import profile_path
        path = profile_path(args.cache_dir)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            print("no phase profile recorded (enable with "
                  "`campaign run --profile` or REPRO_PROFILE=1)")
            return 0
        print(f"phases  {path}")
        print(PhaseProfile.from_dict(data).format(indent="  "))
    return 0


def cmd_trace(args) -> int:
    from repro.obs import PipelineTracer, to_kanata
    from repro.sim.runner import build_core
    program = _get_program_or_exit(args.workload)
    config = _config_from_args(args)
    if args.scheduler:
        config = config.with_(scheduler=args.scheduler)
    budget = (args.instructions if args.instructions is not None
              else default_instructions())
    tracer = PipelineTracer(limit=args.limit)
    core = build_core(program, config)
    core.attach_tracer(tracer)
    stats = core.run(max_instructions=budget)
    text = to_kanata(tracer.events)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    dropped = (f", {tracer.dropped} dropped at --limit"
               if tracer.dropped else "")
    log(f"trace: {args.workload} on {config.label}: "
        f"{stats.committed} committed, {stats.cycles} cycles, "
        f"{len(tracer.events)} events{dropped}")
    return 0


def cmd_campaign_clear(args) -> int:
    dropped = ResultStore(args.cache_dir).clear()
    CampaignJournal(args.cache_dir).clear()
    print(f"cleared {dropped} cached result(s)")
    if args.artifacts:
        from repro.sim.artifacts import ArtifactStore
        blobs = ArtifactStore(args.cache_dir).clear()
        print(f"cleared {blobs} checkpoint blob(s)")
    return 0


def cmd_serve(args) -> int:
    """Run the campaign daemon until SIGTERM/SIGINT (or --ttl)."""
    import signal as _signal
    import threading as _threading
    from repro.sim.service import CampaignService, make_server

    service = CampaignService(
        cache_dir=args.cache_dir, workers=args.jobs,
        lease_ttl=args.lease_ttl, queue_cap=args.queue_cap,
        timeout=args.timeout, retries=args.retries)
    try:
        server = make_server(service, host=args.host, port=args.port)
    except OSError as exc:
        log(f"serve: cannot bind {args.host or ''}:"
            f"{args.port if args.port is not None else ''}: {exc}",
            "error")
        return 2
    service.start()
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(cache {service.cache_dir}, "
          f"{service.workers_wanted} worker(s), "
          f"lease TTL {service.leases.ttl:g}s)", flush=True)

    def _shutdown(signum, frame) -> None:
        # serve_forever() can't be stopped from its own thread's
        # signal frame; hand the shutdown to a helper thread.
        _threading.Thread(target=server.shutdown, daemon=True).start()

    _signal.signal(_signal.SIGINT, _shutdown)
    _signal.signal(_signal.SIGTERM, _shutdown)
    if args.ttl:
        _threading.Timer(args.ttl, server.shutdown).start()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.stop()
        log("serve: stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-State Processor reproduction (MICRO 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sampling_flags(p):
        p.add_argument("--sample", nargs="?", const="periodic",
                       default=False, choices=list(MODES),
                       metavar="MODE",
                       help="sampled simulation: detailed windows over "
                            "a fast functional fast-forward. Bare "
                            "--sample = SMARTS-style periodic windows; "
                            "--sample simpoint = BBV phase clustering "
                            "with one representative window per "
                            f"cluster (choices: {', '.join(MODES)})")
        p.add_argument("--ff", type=int, default=None, metavar="N",
                       help="fast-forward N instructions functionally "
                            "before measuring (alone: one fixed-offset "
                            "window; with --sample: initial skip)")
        p.add_argument("--interval", type=int, default=None, metavar="K",
                       help="detailed instructions per measurement "
                            "window (implies sampling)")
        p.add_argument("--period", type=int, default=None, metavar="P",
                       help="one window per P committed instructions "
                            "(implies sampling)")
        p.add_argument("--clusters", type=int, default=None,
                       metavar="C",
                       help="simpoint: phase clusters / representative "
                            "windows (enables simpoint unless --sample "
                            "or REPRO_SAMPLE already chose a schedule; "
                            "default 4, REPRO_SAMPLE_CLUSTERS)")
        p.add_argument("--bbv-dim", type=int, default=None, metavar="D",
                       help="simpoint: random-projection dimension of "
                            "the interval basic-block vectors (enables "
                            "simpoint unless --sample or REPRO_SAMPLE "
                            "already chose a schedule; default 32, "
                            "REPRO_SAMPLE_BBV_DIM)")

    def add_machine_flags(p):
        p.add_argument("--arch", default="msp",
                       choices=["baseline", "cpr", "msp", "ideal"])
        p.add_argument("--banks", type=int, default=16,
                       help="MSP registers per logical-register bank")
        p.add_argument("--registers", type=int, default=192,
                       help="CPR physical registers per class")
        p.add_argument("--no-arbitration", action="store_true",
                       help="drop the MSP arbitration stage")

    def add_common(p, with_arch=True):
        p.add_argument("workload", help="workload name (see `list`)")
        p.add_argument("-n", "--instructions", type=int, default=None,
                       help="committed-instruction budget (default: "
                            "REPRO_INSTRUCTIONS or 3000; ~30x that "
                            "for sampled runs)")
        p.add_argument("--predictor", default="tage",
                       choices=["gshare", "tage", "bimodal"])
        add_sampling_flags(p)
        if with_arch:
            add_machine_flags(p)

    p_run = sub.add_parser("run", help="simulate one workload")
    add_common(p_run)
    p_run.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the per-interval time-series (IPC, "
                            "MPKI, window occupancy) as JSON lines")
    p_run.add_argument("--metrics-interval", type=int, default=None,
                       metavar="N",
                       help="committed instructions per metrics "
                            "interval on full-detail runs (default: "
                            "budget/50; sampled runs always record one "
                            "row per measurement window)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run the machine grid")
    add_common(p_cmp, with_arch=False)
    p_cmp.set_defaults(func=cmd_compare)

    def add_campaign_flags(p):
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the persistent result cache")
        p.add_argument("--cache-dir", default=None,
                       help="result-cache directory "
                            "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds")
        p.add_argument("--retries", type=int, default=None,
                       help="retries per job on transient failures "
                            "(lost worker, timeout, disk error; "
                            "default: REPRO_RETRIES or 1)")
        p.add_argument("--no-checkpoints", action="store_true",
                       help="skip the checkpoint/profile store sampled "
                            "cells use to share functional execution "
                            "(default: REPRO_CHECKPOINTS)")
        add_sampling_flags(p)

    p_exp = sub.add_parser("experiment", help="regenerate a figure/table")
    p_exp.add_argument("name", help="e.g. figure6, table3")
    p_exp.add_argument("-n", "--instructions", type=int, default=None)
    p_exp.add_argument("-v", "--verbose", action="store_true",
                       help="print per-simulation progress to stderr")
    add_campaign_flags(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_camp = sub.add_parser(
        "campaign", help="batch simulation engine and result cache")
    camp_sub = p_camp.add_subparsers(dest="campaign_command",
                                     required=True)

    p_crun = camp_sub.add_parser(
        "run", help="simulate a workload x machine grid")
    p_crun.add_argument("--suite", default="specint",
                        choices=["specint", "specfp", "all"])
    p_crun.add_argument("--workloads", default=None,
                        help="comma-separated list (overrides --suite)")
    p_crun.add_argument("--machines", default="baseline,cpr,msp:16,ideal",
                        help="comma-separated: baseline cpr cpr:<regs> "
                             "msp:<banks> ideal")
    p_crun.add_argument("--predictor", default="tage",
                        choices=["gshare", "tage", "bimodal"])
    p_crun.add_argument("-n", "--instructions", type=int, default=None)
    p_crun.add_argument("-v", "--verbose", action="store_true",
                        help="print per-cell progress to stderr")
    p_crun.add_argument("--profile", action="store_true",
                        help="time each fresh cell's ff/warmup/detail/"
                             "store phases and print the merged "
                             "breakdown (also REPRO_PROFILE=1)")
    p_crun.add_argument("--resume", action="store_true",
                        help="continue an interrupted campaign: "
                             "execute only the grid cells missing from "
                             "the result cache (see journal.jsonl)")
    add_campaign_flags(p_crun)
    p_crun.set_defaults(func=cmd_campaign_run)

    p_cstat = camp_sub.add_parser("status", help="show the result cache")
    p_cstat.add_argument("--cache-dir", default=None)
    p_cstat.add_argument("--profile", action="store_true",
                         help="also show the accumulated phase profile "
                              "(profile.json) for this cache")
    p_cstat.add_argument("--json", action="store_true",
                         help="machine-readable snapshot (cache, "
                              "artifacts, journal, phases) on stdout")
    p_cstat.set_defaults(func=cmd_campaign_status)

    p_cclear = camp_sub.add_parser("clear", help="drop cached results")
    p_cclear.add_argument("--cache-dir", default=None)
    p_cclear.add_argument("--artifacts", action="store_true",
                          help="also purge the checkpoint/profile blobs")
    p_cclear.set_defaults(func=cmd_campaign_clear)

    p_bench = sub.add_parser(
        "bench", help="measure simulator throughput (inst/s per mode)")
    p_bench.add_argument("--workload", default="gzip",
                         help="workload to time (default gzip)")
    p_bench.add_argument("-n", "--instructions", type=int, default=None,
                         help="fast-forward/sampled budget "
                              "(default 200000; detailed runs 1/10th)")
    p_bench.add_argument("--repeats", type=int, default=1,
                         help="runs per mode; best rate wins (default 1)")
    p_bench.add_argument("--ref", action="store_true",
                         help="also time the reference step()/observer "
                              "paths for an in-place speedup comparison")
    p_bench.add_argument("-o", "--output", default="BENCH_throughput.json",
                         metavar="PATH",
                         help="write the JSON record here (empty string "
                              "to skip; default BENCH_throughput.json)")
    p_bench.add_argument("--check", action="store_true",
                         help="fail (exit 1) if ff+warmup inst/s "
                              "regressed vs --baseline beyond --tolerance")
    p_bench.add_argument("--baseline", default="BENCH_throughput.json",
                         help="baseline JSON for --check "
                              "(default BENCH_throughput.json)")
    p_bench.add_argument("--tolerance", type=float, default=0.30,
                         help="allowed fractional regression for --check "
                              "(default 0.30)")
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="dump a pipeline trace (Kanata text format)")
    p_trace.add_argument("workload", help="workload name (see `list`)")
    p_trace.add_argument("-n", "--instructions", type=int, default=None,
                         help="committed-instruction budget (default: "
                              "REPRO_INSTRUCTIONS or 3000)")
    p_trace.add_argument("--predictor", default="tage",
                         choices=["gshare", "tage", "bimodal"])
    add_machine_flags(p_trace)
    p_trace.add_argument("--scheduler", default=None,
                         choices=["event", "scan"],
                         help="force a detailed-core scheduler (the two "
                              "produce byte-identical traces; default: "
                              "the config's)")
    p_trace.add_argument("-o", "--output", default=None, metavar="PATH",
                         help="write the trace here (default: stdout)")
    p_trace.add_argument("--limit", type=int, default=None, metavar="N",
                         help="max recorded trace events (default: "
                              "REPRO_TRACE_LIMIT or 2000000)")
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="run the campaign service daemon",
        description="Long-running campaign daemon: JSON API over a "
                    "crash-safe job spool with leased workers. "
                    "kill -9 safe: restart on the same --cache-dir "
                    "and accepted campaigns complete bit-identical.")
    p_serve.add_argument("--host", default=None,
                         help="bind address (REPRO_SERVICE_HOST, "
                              "default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="bind port (REPRO_SERVICE_PORT, default "
                              "8023; 0 = ephemeral)")
    p_serve.add_argument("--cache-dir", default=None)
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="worker processes (REPRO_JOBS)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout in seconds")
    p_serve.add_argument("--retries", type=int, default=None,
                         help="transient-failure retries per job "
                              "(REPRO_RETRIES)")
    p_serve.add_argument("--lease-ttl", type=float, default=None,
                         help="seconds without a heartbeat before a "
                              "job lease expires (REPRO_LEASE_TTL)")
    p_serve.add_argument("--queue-cap", type=int, default=None,
                         help="max undone jobs before 429 "
                              "backpressure (REPRO_QUEUE_CAP)")
    p_serve.add_argument("--ttl", type=float, default=None,
                         help="exit after this many seconds "
                              "(smoke-test convenience)")
    p_serve.set_defaults(func=cmd_serve)

    p_list = sub.add_parser("list", help="list workloads and experiments")
    p_list.set_defaults(func=cmd_list)

    p_lst = sub.add_parser("listing", help="print a workload's assembly")
    p_lst.add_argument("workload")
    p_lst.set_defaults(func=cmd_listing)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (SamplingError, EnvConfigError) as exc:
        # Malformed configuration that surfaced past the per-command
        # handlers (e.g. a non-integer REPRO_* knob): one line, no
        # traceback, same convention as every other input error.
        # Internal simulator ValueErrors are NOT caught here — an
        # invariant violation must keep its traceback.
        log(f"error: {exc}", "error")
        return 2
    except BrokenPipeError:
        # Piping into `head` is an advertised pattern (module docstring).
        # Point both standard streams at devnull so the shutdown flush
        # stays quiet, and exit with the conventional SIGPIPE status —
        # never 0, since the command may have been mid-error.
        import os
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        os.dup2(devnull, sys.stderr.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
