"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Simulate one workload on one machine and print the statistics.
``compare``
    Run a workload across the standard machine grid.
``experiment``
    Regenerate one of the paper's figures/tables by name.
``list``
    List workloads, machines and experiments.
``listing``
    Print a workload's assembly listing.

Examples::

    python -m repro run bzip2 --arch msp --banks 16 --predictor tage
    python -m repro compare mcf -n 5000
    python -m repro experiment figure8
    python -m repro listing gzip | head -40
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim import SimConfig, build_core
from repro.sim import experiments as exp
from repro.workloads import SPECFP, SPECINT, all_workloads, get_program

EXPERIMENTS = {
    "figure6": lambda n: exp.figure6(n).to_table(),
    "figure7": lambda n: exp.figure7(n).to_table(),
    "figure8": lambda n: exp.figure8(n).to_table(),
    "table2": lambda n: _format_table2(exp.table2(n)),
    "figure9": lambda n: _format_figure9(exp.figure9(n)),
    "table3": lambda n: _format_table3(),
    "lcs": lambda n: exp.ablation_lcs_delay(instructions=n).to_table(),
    "rename": lambda n: exp.ablation_rename_width(
        instructions=n).to_table(),
    "cpr-registers": lambda n: exp.ablation_cpr_registers(
        instructions=n).to_table(),
}


def _format_table2(rows) -> str:
    lines = ["== Table II: original vs modified kernels (TAGE)"]
    for key, row in rows.items():
        cells = {k: v for k, v in row.items()
                 if k not in ("loops_unrolled", "exec_time_pct")}
        body = "  ".join(f"{k}={v:.3f}" for k, v in cells.items())
        lines.append(f"{key:40s} {body}")
    return "\n".join(lines)


def _format_figure9(data) -> str:
    lines = ["== Figure 9: executed-instruction breakdown"]
    for bench, cells in data.items():
        lines.append(bench)
        for machine, row in cells.items():
            lines.append(
                f"  {machine:18s} correct={row['correct_path']:7d} "
                f"reexec={row['correct_path_reexecuted']:6d} "
                f"wrong={row['wrong_path']:6d}")
    summary = exp.figure9_summary(data)
    for predictor, reduction in summary.items():
        lines.append(f"16-SP executes {100 * reduction:.1f}% fewer "
                     f"instructions than CPR ({predictor})")
    return "\n".join(lines)


def _format_table3() -> str:
    from repro.power import section51_area, table3
    lines = ["== Table III: register-file access power (mW | FO4)"]
    for tech, rows in table3().items():
        lines.append(tech)
        for config, row in rows.items():
            lines.append(f"  {config:34s} "
                         f"W {row['write_power_mw']:5.2f}|"
                         f"{row['write_time_fo4']:4.2f}  "
                         f"R {row['read_power_mw']:5.2f}|"
                         f"{row['read_time_fo4']:4.2f}")
    area = section51_area()
    lines.append(f"Sec 5.1 area (45nm): MSP "
                 f"{area['msp_512_banked_mm2']:.3f} mm^2, CPR "
                 f"{area['cpr_256_fullport_mm2']:.3f} mm^2")
    return "\n".join(lines)


def _config_from_args(args) -> SimConfig:
    if args.arch == "baseline":
        return SimConfig.baseline(predictor=args.predictor)
    if args.arch == "cpr":
        return SimConfig.cpr(predictor=args.predictor,
                             registers=args.registers)
    if args.arch == "msp":
        return SimConfig.msp(args.banks, predictor=args.predictor,
                             arbitration=not args.no_arbitration)
    if args.arch == "ideal":
        return SimConfig.msp_ideal(predictor=args.predictor)
    raise SystemExit(f"unknown architecture {args.arch!r}")


def _standard_grid(predictor: str) -> List[SimConfig]:
    return [SimConfig.baseline(predictor=predictor),
            SimConfig.cpr(predictor=predictor),
            SimConfig.msp(8, predictor=predictor),
            SimConfig.msp(16, predictor=predictor),
            SimConfig.msp_ideal(predictor=predictor)]


def cmd_run(args) -> int:
    config = _config_from_args(args)
    core = build_core(get_program(args.workload), config)
    stats = core.run(max_instructions=args.instructions)
    print(f"{args.workload} on {config.label} "
          f"({args.instructions} instructions)")
    for key, value in stats.summary().items():
        print(f"  {key:24s} {value}")
    if stats.bank_stall_cycles:
        from repro.isa import reg_name
        top = ", ".join(f"{reg_name(r)}={c}"
                        for r, c in stats.top_bank_stalls(3))
        print(f"  {'top_bank_stalls':24s} {top}")
    return 0


def cmd_compare(args) -> int:
    print(f"{'machine':>12s} {'IPC':>7s} {'mispred':>8s} "
          f"{'reexec':>7s} {'wrong':>7s}")
    for config in _standard_grid(args.predictor):
        core = build_core(get_program(args.workload), config)
        stats = core.run(max_instructions=args.instructions)
        print(f"{config.label:>12s} {stats.ipc:7.3f} "
              f"{stats.misprediction_rate:8.3f} "
              f"{stats.correct_path_reexecuted:7d} "
              f"{stats.wrong_path_executed:7d}")
    return 0


def cmd_experiment(args) -> int:
    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    print(EXPERIMENTS[args.name](args.instructions))
    return 0


def cmd_list(args) -> int:
    print("workloads (specint):", " ".join(SPECINT))
    print("workloads (specfp): ", " ".join(SPECFP))
    modified = [w for w in all_workloads() if w.endswith("_mod")]
    print("modified (Table II):", " ".join(modified))
    print("architectures: baseline cpr msp ideal")
    print("experiments:", " ".join(sorted(EXPERIMENTS)))
    return 0


def cmd_listing(args) -> int:
    print(get_program(args.workload).listing())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-State Processor reproduction (MICRO 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_arch=True):
        p.add_argument("workload", help="workload name (see `list`)")
        p.add_argument("-n", "--instructions", type=int, default=3000,
                       help="committed-instruction budget")
        p.add_argument("--predictor", default="tage",
                       choices=["gshare", "tage", "bimodal"])
        if with_arch:
            p.add_argument("--arch", default="msp",
                           choices=["baseline", "cpr", "msp", "ideal"])
            p.add_argument("--banks", type=int, default=16,
                           help="MSP registers per logical-register bank")
            p.add_argument("--registers", type=int, default=192,
                           help="CPR physical registers per class")
            p.add_argument("--no-arbitration", action="store_true",
                           help="drop the MSP arbitration stage")

    p_run = sub.add_parser("run", help="simulate one workload")
    add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run the machine grid")
    add_common(p_cmp, with_arch=False)
    p_cmp.set_defaults(func=cmd_compare)

    p_exp = sub.add_parser("experiment", help="regenerate a figure/table")
    p_exp.add_argument("name", help="e.g. figure6, table3")
    p_exp.add_argument("-n", "--instructions", type=int, default=3000)
    p_exp.set_defaults(func=cmd_experiment)

    p_list = sub.add_parser("list", help="list workloads and experiments")
    p_list.set_defaults(func=cmd_list)

    p_lst = sub.add_parser("listing", help="print a workload's assembly")
    p_lst.add_argument("workload")
    p_lst.set_defaults(func=cmd_listing)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
