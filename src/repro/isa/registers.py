"""Logical (architectural) register definitions.

The repro ISA has 32 integer and 32 floating-point logical registers, the
typical count the paper assumes ("The number of SCTs is equal to the number
of logical registers, typically 32").

To keep the simulator's hot paths cheap, a logical register is a plain
``int`` in a single flat namespace:

* ``0 .. 31``  -> integer registers  ``r0 .. r31``
* ``32 .. 63`` -> floating-point registers ``f0 .. f31``

Helpers here convert between indices, names and register classes.
"""

from __future__ import annotations

from enum import Enum

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS


class RegClass(Enum):
    """Architectural register file class."""

    INT = "int"
    FP = "fp"


def int_reg(index: int) -> int:
    """Return the flat register id of integer register ``r{index}``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the flat register id of floating-point register ``f{index}``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return NUM_INT_REGS + index


def reg_class(reg: int) -> RegClass:
    """Return the :class:`RegClass` of a flat register id."""
    if not 0 <= reg < NUM_LOGICAL_REGS:
        raise ValueError(f"register id out of range: {reg}")
    return RegClass.INT if reg < NUM_INT_REGS else RegClass.FP


def is_int_reg(reg: int) -> bool:
    """True if ``reg`` names an integer register."""
    return 0 <= reg < NUM_INT_REGS


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` names a floating-point register."""
    return NUM_INT_REGS <= reg < NUM_LOGICAL_REGS


def reg_name(reg: int) -> str:
    """Human-readable name (``r7`` / ``f3``) of a flat register id."""
    if is_int_reg(reg):
        return f"r{reg}"
    if is_fp_reg(reg):
        return f"f{reg - NUM_INT_REGS}"
    raise ValueError(f"register id out of range: {reg}")


def parse_reg(name: str) -> int:
    """Parse ``r<N>`` / ``f<N>`` back into a flat register id."""
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"not a register name: {name!r}")
    index = int(name[1:])
    return int_reg(index) if name[0] == "r" else fp_reg(index)
