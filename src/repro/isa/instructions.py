"""Static (decoded) instruction representation.

An :class:`Instruction` is one *static* instruction in a program's
instruction memory. Dynamic, per-execution state (renamed operands, issue
time, speculation colour, ...) lives in the pipeline's in-flight record, so
one ``Instruction`` object is shared by every dynamic instance of it.

All per-opcode metadata is pre-resolved in ``__init__`` so the simulator's
inner loops read plain attributes instead of consulting opcode tables.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opcodes import (
    FU_CODE,
    LOAD_OPS,
    STORE_OPS,
    Op,
    op_fu_type,
    op_is_branch,
    op_is_control,
    op_kind,
    op_latency,
    op_writes_reg,
)
from repro.isa.registers import reg_name
from repro.isa.semantics import BRANCH_FNS, EVAL_FNS


class Instruction:
    """One static instruction.

    Parameters
    ----------
    op:
        The opcode.
    dest:
        Flat destination register id, or ``None`` for ops that do not
        assign a register (branches, stores, jumps, NOP/HALT).
    srcs:
        Flat source register ids, in operand order. For stores, ``srcs[0]``
        is the value register and ``srcs[1]`` the address base register.
    imm:
        Immediate operand (ALU immediate or address offset).
    target:
        Absolute instruction-memory PC for direct branches/jumps.
    """

    __slots__ = (
        "op", "dest", "srcs", "imm", "target",
        "is_branch", "is_control", "is_jump", "is_indirect",
        "is_load", "is_store", "is_mem", "writes_reg",
        "fu_type", "fu_code", "latency", "kind",
        "eval_fn", "branch_fn",
    )

    def __init__(
        self,
        op: Op,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        imm: int = 0,
        target: Optional[int] = None,
    ) -> None:
        self.op = op
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.target = target

        self.is_branch = op_is_branch(op)
        self.is_control = op_is_control(op)
        self.is_jump = op in (Op.JMP, Op.JR)
        self.is_indirect = op is Op.JR
        self.is_load = op in LOAD_OPS
        self.is_store = op in STORE_OPS
        self.is_mem = self.is_load or self.is_store
        self.writes_reg = op_writes_reg(op)
        self.fu_type = op_fu_type(op)
        self.fu_code = FU_CODE[self.fu_type]
        self.latency = op_latency(op)
        self.kind = op_kind(op)
        self.eval_fn = EVAL_FNS.get(op)
        self.branch_fn = BRANCH_FNS.get(op)

        self._validate()

    def _validate(self) -> None:
        if self.writes_reg and self.dest is None:
            raise ValueError(f"{self.op.name} requires a destination register")
        if not self.writes_reg and self.dest is not None:
            raise ValueError(f"{self.op.name} must not name a destination")
        if self.is_control and not self.is_indirect and self.op is not Op.HALT:
            if self.target is None:
                raise ValueError(f"{self.op.name} requires a resolved target")

    def __repr__(self) -> str:
        parts = [self.op.name.lower()]
        if self.dest is not None:
            parts.append(reg_name(self.dest))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
