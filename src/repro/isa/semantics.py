"""Functional semantics of the repro ISA.

The timing cores are *execution driven*: they really compute instruction
results from physical-register values, including down mispredicted paths,
which is what lets the simulator measure wrong-path and re-executed
instruction counts (Fig. 9 of the paper).

Integer values are wrapped to signed 64-bit two's complement so behaviour
is deterministic and platform independent. Division by zero is defined to
produce 0 (the workloads are synthetic; we want totality, not traps, except
where the exception-injection hook is used).
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.isa.opcodes import Op

Value = Union[int, float]

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def _shift_amount(value: int) -> int:
    return value & 63


def evaluate(op: Op, srcs: Sequence[Value], imm: int = 0) -> Value:
    """Compute the result value of a register-writing ``op``.

    ``srcs`` holds the source operand values in operand order.
    """
    if op is Op.ADD:
        return wrap_int(srcs[0] + srcs[1])
    if op is Op.SUB:
        return wrap_int(srcs[0] - srcs[1])
    if op is Op.MUL:
        return wrap_int(srcs[0] * srcs[1])
    if op is Op.DIV:
        if srcs[1] == 0:
            return 0
        return wrap_int(int(srcs[0] / srcs[1]))
    if op is Op.AND:
        return wrap_int(srcs[0] & srcs[1])
    if op is Op.OR:
        return wrap_int(srcs[0] | srcs[1])
    if op is Op.XOR:
        return wrap_int(srcs[0] ^ srcs[1])
    if op is Op.SHL:
        return wrap_int(srcs[0] << _shift_amount(srcs[1]))
    if op is Op.SHR:
        return wrap_int(srcs[0] >> _shift_amount(srcs[1]))
    if op is Op.SLT:
        return 1 if srcs[0] < srcs[1] else 0
    if op is Op.ADDI:
        return wrap_int(srcs[0] + imm)
    if op is Op.LI:
        return wrap_int(imm)
    if op is Op.MOV:
        return wrap_int(srcs[0])
    if op is Op.FADD:
        return srcs[0] + srcs[1]
    if op is Op.FSUB:
        return srcs[0] - srcs[1]
    if op is Op.FMUL:
        return srcs[0] * srcs[1]
    if op is Op.FDIV:
        if srcs[1] == 0.0:
            return 0.0
        return srcs[0] / srcs[1]
    if op is Op.FMOV:
        return float(srcs[0])
    if op is Op.FCVT:
        return float(srcs[0])
    if op is Op.FCMPLT:
        return 1 if srcs[0] < srcs[1] else 0
    raise ValueError(f"{op.name} has no ALU semantics")


def branch_taken(op: Op, srcs: Sequence[Value]) -> bool:
    """Resolve a conditional branch's direction from its operand values."""
    if op is Op.BEQ:
        return srcs[0] == srcs[1]
    if op is Op.BNE:
        return srcs[0] != srcs[1]
    if op is Op.BLT:
        return srcs[0] < srcs[1]
    if op is Op.BGE:
        return srcs[0] >= srcs[1]
    if op is Op.BEQZ:
        return srcs[0] == 0
    if op is Op.BNEZ:
        return srcs[0] != 0
    raise ValueError(f"{op.name} is not a conditional branch")


def effective_address(base: Value, imm: int) -> int:
    """Word-granular effective address of a memory op."""
    if isinstance(base, float):
        base = int(base) if math.isfinite(base) else 0
    return wrap_int(base + imm) & _MASK


# --------------------------------------------------------------------- #
# Pre-bound per-op closures for the timing cores' execute hot path.
#
# ``EVAL_FNS[op](srcs, imm)`` must equal ``evaluate(op, srcs, imm)`` and
# ``BRANCH_FNS[op](srcs)`` must equal ``branch_taken(op, srcs)`` for every
# op and operand values — each closure replicates the corresponding
# branch of the reference if-ladder above, which stays the oracle
# (tests/isa/test_semantics.py pins the parity). Instructions resolve
# their closure once at decode (``Instruction.eval_fn`` /
# ``Instruction.branch_fn``) so the issue loop pays one indirect call
# instead of an opcode ladder per executed µop.
# --------------------------------------------------------------------- #

EVAL_FNS = {
    Op.ADD: lambda s, imm: wrap_int(s[0] + s[1]),
    Op.SUB: lambda s, imm: wrap_int(s[0] - s[1]),
    Op.MUL: lambda s, imm: wrap_int(s[0] * s[1]),
    Op.DIV: lambda s, imm: wrap_int(int(s[0] / s[1])) if s[1] != 0 else 0,
    Op.AND: lambda s, imm: wrap_int(s[0] & s[1]),
    Op.OR: lambda s, imm: wrap_int(s[0] | s[1]),
    Op.XOR: lambda s, imm: wrap_int(s[0] ^ s[1]),
    Op.SHL: lambda s, imm: wrap_int(s[0] << (s[1] & 63)),
    Op.SHR: lambda s, imm: wrap_int(s[0] >> (s[1] & 63)),
    Op.SLT: lambda s, imm: 1 if s[0] < s[1] else 0,
    Op.ADDI: lambda s, imm: wrap_int(s[0] + imm),
    Op.LI: lambda s, imm: wrap_int(imm),
    Op.MOV: lambda s, imm: wrap_int(s[0]),
    Op.FADD: lambda s, imm: s[0] + s[1],
    Op.FSUB: lambda s, imm: s[0] - s[1],
    Op.FMUL: lambda s, imm: s[0] * s[1],
    Op.FDIV: lambda s, imm: s[0] / s[1] if s[1] != 0.0 else 0.0,
    Op.FMOV: lambda s, imm: float(s[0]),
    Op.FCVT: lambda s, imm: float(s[0]),
    Op.FCMPLT: lambda s, imm: 1 if s[0] < s[1] else 0,
}

BRANCH_FNS = {
    Op.BEQ: lambda s: s[0] == s[1],
    Op.BNE: lambda s: s[0] != s[1],
    Op.BLT: lambda s: s[0] < s[1],
    Op.BGE: lambda s: s[0] >= s[1],
    Op.BEQZ: lambda s: s[0] == 0,
    Op.BNEZ: lambda s: s[0] != 0,
}
