"""Functional semantics of the repro ISA.

The timing cores are *execution driven*: they really compute instruction
results from physical-register values, including down mispredicted paths,
which is what lets the simulator measure wrong-path and re-executed
instruction counts (Fig. 9 of the paper).

Integer values are wrapped to signed 64-bit two's complement so behaviour
is deterministic and platform independent. Division by zero is defined to
produce 0 (the workloads are synthetic; we want totality, not traps, except
where the exception-injection hook is used).
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.isa.opcodes import Op

Value = Union[int, float]

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def _shift_amount(value: int) -> int:
    return value & 63


def evaluate(op: Op, srcs: Sequence[Value], imm: int = 0) -> Value:
    """Compute the result value of a register-writing ``op``.

    ``srcs`` holds the source operand values in operand order.
    """
    if op is Op.ADD:
        return wrap_int(srcs[0] + srcs[1])
    if op is Op.SUB:
        return wrap_int(srcs[0] - srcs[1])
    if op is Op.MUL:
        return wrap_int(srcs[0] * srcs[1])
    if op is Op.DIV:
        if srcs[1] == 0:
            return 0
        return wrap_int(int(srcs[0] / srcs[1]))
    if op is Op.AND:
        return wrap_int(srcs[0] & srcs[1])
    if op is Op.OR:
        return wrap_int(srcs[0] | srcs[1])
    if op is Op.XOR:
        return wrap_int(srcs[0] ^ srcs[1])
    if op is Op.SHL:
        return wrap_int(srcs[0] << _shift_amount(srcs[1]))
    if op is Op.SHR:
        return wrap_int(srcs[0] >> _shift_amount(srcs[1]))
    if op is Op.SLT:
        return 1 if srcs[0] < srcs[1] else 0
    if op is Op.ADDI:
        return wrap_int(srcs[0] + imm)
    if op is Op.LI:
        return wrap_int(imm)
    if op is Op.MOV:
        return wrap_int(srcs[0])
    if op is Op.FADD:
        return srcs[0] + srcs[1]
    if op is Op.FSUB:
        return srcs[0] - srcs[1]
    if op is Op.FMUL:
        return srcs[0] * srcs[1]
    if op is Op.FDIV:
        if srcs[1] == 0.0:
            return 0.0
        return srcs[0] / srcs[1]
    if op is Op.FMOV:
        return float(srcs[0])
    if op is Op.FCVT:
        return float(srcs[0])
    if op is Op.FCMPLT:
        return 1 if srcs[0] < srcs[1] else 0
    raise ValueError(f"{op.name} has no ALU semantics")


def branch_taken(op: Op, srcs: Sequence[Value]) -> bool:
    """Resolve a conditional branch's direction from its operand values."""
    if op is Op.BEQ:
        return srcs[0] == srcs[1]
    if op is Op.BNE:
        return srcs[0] != srcs[1]
    if op is Op.BLT:
        return srcs[0] < srcs[1]
    if op is Op.BGE:
        return srcs[0] >= srcs[1]
    if op is Op.BEQZ:
        return srcs[0] == 0
    if op is Op.BNEZ:
        return srcs[0] != 0
    raise ValueError(f"{op.name} is not a conditional branch")


def effective_address(base: Value, imm: int) -> int:
    """Word-granular effective address of a memory op."""
    if isinstance(base, float):
        base = int(base) if math.isfinite(base) else 0
    return wrap_int(base + imm) & _MASK
