"""The repro ISA: registers, opcodes, instructions, programs, emulator."""

from repro.isa.emulator import (
    Emulator,
    EmulatorResult,
    EmulatorState,
    run_program,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import FUType, Op
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_LOGICAL_REGS,
    RegClass,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    parse_reg,
    reg_class,
    reg_name,
)

__all__ = [
    "Emulator",
    "EmulatorResult",
    "EmulatorState",
    "FUType",
    "Instruction",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_LOGICAL_REGS",
    "Op",
    "Program",
    "ProgramBuilder",
    "RegClass",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "is_int_reg",
    "parse_reg",
    "reg_class",
    "reg_name",
    "run_program",
]
