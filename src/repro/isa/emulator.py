"""Architectural reference emulator.

Executes a :class:`~repro.isa.program.Program` functionally, one
instruction at a time, with no timing. The three timing cores (baseline,
CPR, MSP) must all commit exactly this instruction stream — the integration
tests use the emulator as the oracle for that cross-check, and the workload
generators use it to sanity-check that kernels terminate and touch the
memory they claim to.

Two facilities support the sampled-simulation engine
(:mod:`repro.sim.sampling`):

* :meth:`Emulator.snapshot` / :meth:`Emulator.restore` capture and
  reinstate the complete architectural state (PC, registers, memory) as
  an :class:`EmulatorState` — the checkpoint a detailed timing core can
  be seeded from;
* an optional :attr:`Emulator.observer` is called once per retired
  instruction with the PC, branch outcome, memory address and next PC,
  so a fast-forward phase can warm branch predictors and caches from
  the functional stream without re-implementing the ISA semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.program import Program
from repro.isa.registers import NUM_LOGICAL_REGS, is_fp_reg
from repro.isa.semantics import branch_taken, effective_address, evaluate
from repro.isa.opcodes import Op

#: Signature of :attr:`Emulator.observer`:
#: ``observer(pc, inst, taken, mem_addr, next_pc)`` where ``taken`` is
#: None for non-conditional-branch instructions and ``mem_addr`` is
#: None for non-memory instructions.
Observer = Callable[[int, object, Optional[bool], Optional[int], int],
                    None]


class EmulatorState:
    """Exact architectural checkpoint: (pc, registers, memory).

    ``regs`` and ``memory`` are private copies — restoring or seeding a
    core from the same state twice yields identical runs even if one of
    them mutates its own architectural state afterwards.
    """

    __slots__ = ("pc", "regs", "memory", "retired")

    def __init__(self, pc: int, regs: List, memory: Dict[int, float],
                 retired: int = 0) -> None:
        self.pc = pc
        self.regs = regs
        self.memory = memory
        #: Committed instructions before this checkpoint (bookkeeping
        #: only; not needed to resume).
        self.retired = retired

    def __repr__(self) -> str:
        return (f"EmulatorState(pc={self.pc}, retired={self.retired}, "
                f"mem_words={len(self.memory)})")


class EmulatorResult:
    """Outcome of an emulation run."""

    def __init__(self) -> None:
        self.retired = 0
        self.halted = False
        self.fell_off = False
        self.pc_trace: List[int] = []
        self.branch_outcomes: List[Tuple[int, bool]] = []

    @property
    def terminated(self) -> bool:
        return self.halted or self.fell_off


class Emulator:
    """In-order architectural interpreter for the repro ISA."""

    def __init__(self, program: Program,
                 trace_pcs: bool = False,
                 trace_branches: bool = False) -> None:
        self.program = program
        self.pc = program.entry
        self.regs: List[float] = [0] * NUM_LOGICAL_REGS
        for r in range(NUM_LOGICAL_REGS):
            if is_fp_reg(r):
                self.regs[r] = 0.0
        self.memory: Dict[int, float] = dict(program.initial_memory)
        self._trace_pcs = trace_pcs
        self._trace_branches = trace_branches
        #: Optional hook called on every retired instruction, for tests.
        self.retire_hook: Optional[Callable[[int], None]] = None
        #: Optional per-instruction stream observer (see module doc);
        #: the sampling warm-up engine trains predictors/caches here.
        self.observer: Optional[Observer] = None
        #: Total instructions retired across every :meth:`run` call.
        self.retired_total = 0

    def read_reg(self, reg: int):
        return self.regs[reg]

    def read_mem(self, addr: int):
        return self.memory.get(addr, 0)

    # ------------------------------------------------------------------ #
    # Checkpointing (exact architectural snapshot/restore).
    # ------------------------------------------------------------------ #

    def snapshot(self) -> EmulatorState:
        """Capture the complete architectural state as a checkpoint."""
        return EmulatorState(self.pc, list(self.regs), dict(self.memory),
                             retired=self.retired_total)

    def restore(self, state: EmulatorState) -> None:
        """Reinstate a checkpoint taken by :meth:`snapshot`. Resuming
        must produce the exact instruction stream a straight-through run
        would have (the checkpoint-determinism tests enforce this)."""
        self.pc = state.pc
        self.regs = list(state.regs)
        self.memory = dict(state.memory)
        self.retired_total = state.retired

    # ------------------------------------------------------------------ #

    def step(self, result: EmulatorResult) -> bool:
        """Execute one instruction; return False when the run terminated."""
        inst = self.program.fetch(self.pc)
        if inst is None:
            result.fell_off = True
            return False
        if inst.op is Op.HALT:
            result.halted = True
            return False

        if self._trace_pcs:
            result.pc_trace.append(self.pc)
        next_pc = self.pc + 1
        taken: Optional[bool] = None
        mem_addr: Optional[int] = None

        if inst.is_branch:
            values = [self.regs[s] for s in inst.srcs]
            taken = branch_taken(inst.op, values)
            if self._trace_branches:
                result.branch_outcomes.append((self.pc, taken))
            if taken:
                next_pc = inst.target
        elif inst.op is Op.JMP:
            next_pc = inst.target
        elif inst.op is Op.JR:
            next_pc = int(self.regs[inst.srcs[0]])
        elif inst.is_load:
            mem_addr = effective_address(self.regs[inst.srcs[0]], inst.imm)
            value = self.memory.get(mem_addr, 0)
            self.regs[inst.dest] = (float(value) if inst.op is Op.FLD
                                    else value)
        elif inst.is_store:
            mem_addr = effective_address(self.regs[inst.srcs[1]], inst.imm)
            self.memory[mem_addr] = self.regs[inst.srcs[0]]
        elif inst.writes_reg:
            values = [self.regs[s] for s in inst.srcs]
            self.regs[inst.dest] = evaluate(inst.op, values, inst.imm)
        # NOP: nothing.

        if self.observer is not None:
            self.observer(self.pc, inst, taken, mem_addr, next_pc)
        self.pc = next_pc
        result.retired += 1
        self.retired_total += 1
        if self.retire_hook is not None:
            self.retire_hook(result.retired)
        return True

    def run(self, max_instructions: int = 1_000_000) -> EmulatorResult:
        """Run until HALT, PC fall-off, or the instruction budget."""
        result = EmulatorResult()
        while result.retired < max_instructions:
            if not self.step(result):
                break
        return result


def run_program(program: Program, max_instructions: int = 1_000_000,
                **kwargs) -> EmulatorResult:
    """Convenience one-shot emulation of ``program``."""
    return Emulator(program, **kwargs).run(max_instructions)
