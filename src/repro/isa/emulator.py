"""Architectural reference emulator.

Executes a :class:`~repro.isa.program.Program` functionally, one
instruction at a time, with no timing. The three timing cores (baseline,
CPR, MSP) must all commit exactly this instruction stream — the integration
tests use the emulator as the oracle for that cross-check, and the workload
generators use it to sanity-check that kernels terminate and touch the
memory they claim to.

Two facilities support the sampled-simulation engine
(:mod:`repro.sim.sampling`):

* :meth:`Emulator.snapshot` / :meth:`Emulator.restore` capture and
  reinstate the complete architectural state (PC, registers, memory) as
  an :class:`EmulatorState` — the checkpoint a detailed timing core can
  be seeded from;
* an optional :attr:`Emulator.observer` is called once per retired
  instruction with the PC, branch outcome, memory address and next PC,
  so a fast-forward phase can warm branch predictors and caches from
  the functional stream without re-implementing the ISA semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.program import Program
from repro.isa.registers import NUM_LOGICAL_REGS, is_fp_reg
from repro.isa.semantics import branch_taken, effective_address, evaluate
from repro.isa.opcodes import Op

#: Signature of :attr:`Emulator.observer`:
#: ``observer(pc, inst, taken, mem_addr, next_pc)`` where ``taken`` is
#: None for non-conditional-branch instructions and ``mem_addr`` is
#: None for non-memory instructions.
Observer = Callable[[int, object, Optional[bool], Optional[int], int],
                    None]

# Opcode values as plain ints for run_fast's dispatch ladder (the
# decoded ``code`` array stores ``Op.value``).
_ADD = Op.ADD.value
_SUB = Op.SUB.value
_MUL = Op.MUL.value
_DIV = Op.DIV.value
_AND = Op.AND.value
_OR = Op.OR.value
_XOR = Op.XOR.value
_SHL = Op.SHL.value
_SHR = Op.SHR.value
_SLT = Op.SLT.value
_ADDI = Op.ADDI.value
_LI = Op.LI.value
_MOV = Op.MOV.value
_FADD = Op.FADD.value
_LD = Op.LD.value
_ST = Op.ST.value
_FLD = Op.FLD.value
_FST = Op.FST.value
_BEQ = Op.BEQ.value
_BNE = Op.BNE.value
_BLT = Op.BLT.value
_BGE = Op.BGE.value
_BEQZ = Op.BEQZ.value
_BNEZ = Op.BNEZ.value
_JMP = Op.JMP.value
_JR = Op.JR.value
_NOP = Op.NOP.value
_HALT = Op.HALT.value

# The ladder relies on the enum's layout: integer ALU ops below FADD,
# FP arithmetic below LD, and a contiguous conditional-branch block.
assert _FADD == _MOV + 1 and _LD == _FADD + 7
assert _BNEZ == _BEQ + 5 and _JMP == _BNEZ + 1

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63
_TWO64 = 1 << 64
#: Instruction-address offset (see MemoryHierarchy.instruction_latency).
_IBASE = 1 << 40


class EmulatorState:
    """Exact architectural checkpoint: (pc, registers, memory).

    By default ``regs`` and ``memory`` are private copies — restoring or
    seeding a core from the same state twice yields identical runs even
    if one of them mutates its own architectural state afterwards.

    A checkpoint taken with ``snapshot(share=True)`` instead *shares*
    the emulator's live memory dict copy-on-write: the emulator copies
    its dict away before its next mutation, so the checkpoint stays a
    true point-in-time snapshot while the snapshot itself costs O(regs)
    instead of O(memory footprint).  Consumers must treat a shared
    checkpoint's ``memory`` as read-only, and should call
    :meth:`release` once the checkpoint is dead so the emulator can
    skip the deferred copy entirely (the sampled engine does this after
    seeding each measurement window).
    """

    __slots__ = ("pc", "regs", "memory", "retired", "_owner")

    def __init__(self, pc: int, regs: List, memory: Dict[int, float],
                 retired: int = 0, owner: "Optional[Emulator]" = None) -> None:
        self.pc = pc
        self.regs = regs
        self.memory = memory
        #: Committed instructions before this checkpoint (bookkeeping
        #: only; not needed to resume).
        self.retired = retired
        #: Emulator whose live dict ``memory`` aliases (shared
        #: checkpoints only).
        self._owner = owner

    def release(self) -> None:
        """Declare a shared checkpoint dead: if the owning emulator is
        still copy-on-write-guarding the dict this checkpoint aliases,
        drop this checkpoint's claim on it — the guard itself is only
        lifted once the *last* live shared checkpoint of the dict has
        released (several may alias it when no execution happened in
        between).  No-op for private checkpoints; idempotent."""
        owner = self._owner
        if owner is not None and owner.memory is self.memory \
                and owner._mem_cow:
            owner._mem_shared -= 1
            if owner._mem_shared <= 0:
                owner._mem_cow = False
        self._owner = None

    def __repr__(self) -> str:
        return (f"EmulatorState(pc={self.pc}, retired={self.retired}, "
                f"mem_words={len(self.memory)})")


class EmulatorResult:
    """Outcome of an emulation run."""

    def __init__(self) -> None:
        self.retired = 0
        self.halted = False
        self.fell_off = False
        self.pc_trace: List[int] = []
        self.branch_outcomes: List[Tuple[int, bool]] = []

    @property
    def terminated(self) -> bool:
        return self.halted or self.fell_off


class Emulator:
    """In-order architectural interpreter for the repro ISA."""

    def __init__(self, program: Program,
                 trace_pcs: bool = False,
                 trace_branches: bool = False) -> None:
        self.program = program
        self.pc = program.entry
        self.regs: List[float] = [0] * NUM_LOGICAL_REGS
        for r in range(NUM_LOGICAL_REGS):
            if is_fp_reg(r):
                self.regs[r] = 0.0
        self.memory: Dict[int, float] = dict(program.initial_memory)
        self._trace_pcs = trace_pcs
        self._trace_branches = trace_branches
        #: Optional hook called on every retired instruction, for tests.
        self.retire_hook: Optional[Callable[[int], None]] = None
        #: Optional per-instruction stream observer (see module doc);
        #: the sampling warm-up engine trains predictors/caches here.
        self.observer: Optional[Observer] = None
        #: Total instructions retired across every :meth:`run` call.
        self.retired_total = 0
        #: True while ``self.memory`` is aliased by a shared snapshot:
        #: the next execution detaches by copying the dict first.
        #: ``_mem_shared`` counts the live shared snapshots of the
        #: current dict so release() only lifts the guard for the last.
        self._mem_cow = False
        self._mem_shared = 0

    def read_reg(self, reg: int):
        return self.regs[reg]

    def read_mem(self, addr: int):
        return self.memory.get(addr, 0)

    # ------------------------------------------------------------------ #
    # Checkpointing (exact architectural snapshot/restore).
    # ------------------------------------------------------------------ #

    def snapshot(self, share: bool = False) -> EmulatorState:
        """Capture the complete architectural state as a checkpoint.

        With ``share=True`` the checkpoint aliases the live memory dict
        copy-on-write instead of copying it (see
        :class:`EmulatorState`); registers are always copied (small).
        """
        if share:
            if not self._mem_cow:
                # Fresh aliasing generation for the current dict (any
                # earlier shared snapshots alias a detached copy).
                self._mem_shared = 0
            self._mem_cow = True
            self._mem_shared += 1
            return EmulatorState(self.pc, list(self.regs), self.memory,
                                 retired=self.retired_total, owner=self)
        return EmulatorState(self.pc, list(self.regs), dict(self.memory),
                             retired=self.retired_total)

    def restore(self, state: EmulatorState) -> None:
        """Reinstate a checkpoint taken by :meth:`snapshot`. Resuming
        must produce the exact instruction stream a straight-through run
        would have (the checkpoint-determinism tests enforce this)."""
        self.pc = state.pc
        self.regs = list(state.regs)
        self.memory = dict(state.memory)
        self.retired_total = state.retired
        self._mem_cow = False

    # ------------------------------------------------------------------ #

    def step(self, result: EmulatorResult) -> bool:
        """Execute one instruction; return False when the run terminated."""
        if self._mem_cow:
            # A shared snapshot aliases our memory: detach before any
            # mutation so the snapshot stays point-in-time.
            self.memory = dict(self.memory)
            self._mem_cow = False
        inst = self.program.fetch(self.pc)
        if inst is None:
            result.fell_off = True
            return False
        if inst.op is Op.HALT:
            result.halted = True
            return False

        if self._trace_pcs:
            result.pc_trace.append(self.pc)
        next_pc = self.pc + 1
        taken: Optional[bool] = None
        mem_addr: Optional[int] = None

        if inst.is_branch:
            values = [self.regs[s] for s in inst.srcs]
            taken = branch_taken(inst.op, values)
            if self._trace_branches:
                result.branch_outcomes.append((self.pc, taken))
            if taken:
                next_pc = inst.target
        elif inst.op is Op.JMP:
            next_pc = inst.target
        elif inst.op is Op.JR:
            next_pc = int(self.regs[inst.srcs[0]])
        elif inst.is_load:
            mem_addr = effective_address(self.regs[inst.srcs[0]], inst.imm)
            value = self.memory.get(mem_addr, 0)
            self.regs[inst.dest] = (float(value) if inst.op is Op.FLD
                                    else value)
        elif inst.is_store:
            mem_addr = effective_address(self.regs[inst.srcs[1]], inst.imm)
            self.memory[mem_addr] = self.regs[inst.srcs[0]]
        elif inst.writes_reg:
            values = [self.regs[s] for s in inst.srcs]
            self.regs[inst.dest] = evaluate(inst.op, values, inst.imm)
        # NOP: nothing.

        if self.observer is not None:
            self.observer(self.pc, inst, taken, mem_addr, next_pc)
        self.pc = next_pc
        result.retired += 1
        self.retired_total += 1
        if self.retire_hook is not None:
            self.retire_hook(result.retired)
        return True

    def run(self, max_instructions: int = 1_000_000) -> EmulatorResult:
        """Run until HALT, PC fall-off, or the instruction budget."""
        result = EmulatorResult()
        while result.retired < max_instructions:
            if not self.step(result):
                break
        return result

    def run_fast(self, max_instructions: int = 1_000_000,
                 warmup=None, bbv=None) -> EmulatorResult:
        """Fast interpreter loop over the predecoded program.

        Semantically identical to :meth:`run` (the oracle tests enforce
        bit-exact architectural state), but dispatches on the decoded
        flat arrays with every per-instruction attribute lookup hoisted
        to locals.  ``warmup`` optionally fuses the sampled engine's
        functional warm-up into the loop: it must expose ``predictor``
        (with ``train``), ``btb``, ``hierarchy``, ``confidence``,
        ``_line_shift``, ``_last_fetch_line`` and ``instructions`` —
        the :class:`~repro.sim.sampling.warmup.WarmupEngine` contract —
        and is driven per predecoded kind instead of re-testing
        instruction class inside an observer callback.

        ``bbv`` fuses basic-block-vector profiling the same way: a
        :class:`~repro.sim.sampling.simpoint.BBVCollector` whose
        ``interval``/``pos``/``counts``/``intervals``/``entry_pc``/
        ``pending`` fields are driven directly from the control-transfer
        dispatch arms (one dict update per *block*, not per
        instruction), so profiling stays near plain emulator speed.
        Profiling and warm-up are different passes of the simpoint
        engine and cannot be fused together.

        Tracing flags, ``retire_hook`` and a generic ``observer`` are
        reference-path features: when any is set this falls back to
        :meth:`run` (installing ``warmup``/``bbv`` as the observer) so
        hooks keep firing.
        """
        if warmup is not None and bbv is not None:
            raise ValueError("run_fast: warmup and bbv are separate "
                             "passes; fuse at most one per run")
        decoded = self.program.decoded
        if (self.observer is not None or self.retire_hook is not None
                or self._trace_pcs or self._trace_branches
                or decoded.has_wild_targets):
            hook = warmup if warmup is not None else bbv
            if hook is None:
                return self.run(max_instructions)
            if self.observer is not None and self.observer is not hook:
                raise ValueError("run_fast: an observer is already "
                                 "installed; cannot also fuse a warmup "
                                 "engine or BBV collector")
            saved = self.observer
            self.observer = hook
            try:
                return self.run(max_instructions)
            finally:
                self.observer = saved
        if self._mem_cow:
            self.memory = dict(self.memory)
            self._mem_cow = False

        result = EmulatorResult()
        code = decoded.code
        s0 = decoded.s0
        s1 = decoded.s1
        dest = decoded.dest
        imm = decoded.imm
        target = decoded.target
        insts = decoded.insts
        regs = self.regs
        mem = self.memory
        mem_get = mem.get
        pc = self.pc
        retired = 0

        prof = bbv is not None
        if prof:
            # Basic-block-vector profiling state, hoisted to locals.
            # Blocks close only at control transfers, so straight-line
            # stretches cost nothing; lengths come from retired-count
            # deltas against ``b_anchor`` (negative when a block left
            # open by a previous call carries into this one).
            b_interval = bbv.interval
            b_counts = bbv.counts
            b_intervals = bbv.intervals
            b_pos = bbv.pos
            b_entry = bbv.entry_pc
            b_anchor = -bbv.pending
            if b_entry < 0:
                b_entry = pc

        warm = warmup is not None
        if warm:
            train = warmup.predictor.train
            confidence = warmup.confidence
            conf_update = (confidence.update if confidence is not None
                           else None)
            btb_predict = warmup.btb.predict
            btb_update = warmup.btb.update
            # The cache *hit* paths (the overwhelmingly common case on
            # a warm hierarchy) are inlined below — same lookup, LRU
            # touch and dirty marking as Cache.access, with the hit
            # counters accumulated locally and flushed after the loop.
            # Misses fall back to Cache.access + the L2 probe, exactly
            # the MemoryHierarchy composition (latencies are unused
            # during warm-up).
            hierarchy = warmup.hierarchy
            icache = hierarchy.icache
            dcache = hierarchy.dcache
            ic_sets = icache._sets
            ic_set_mask = icache.set_mask
            ic_set_bits = icache._set_bits
            ic_alloc = icache.access
            dc_sets = dcache._sets
            dc_set_mask = dcache.set_mask
            dc_set_bits = dcache._set_bits
            dc_alloc = dcache.access
            l2_access = hierarchy.l2.access
            ic_hits = 0
            dc_hits = 0
            # One-line D-cache MRU filter: consecutive accesses to the
            # same line skip the set lookup entirely (the line is
            # provably present and MRU, so only the hit count — and
            # the dirty bit, for stores — needs touching).
            dc_last_line = -1
            dc_last_set = None
            dc_last_tag = -1
            line_shift = warmup._line_shift
            last_line = warmup._last_fetch_line
            # Cache-line id of a word address is word >> line_shift
            # (same line geometry across the hierarchy); instruction
            # words sit at _IBASE + pc, and _IBASE is line-aligned, so
            # the fetch-dedup line doubles as the line-id offset.
            ic_line_base = _IBASE >> line_shift

        if pc < 0 and max_instructions > 0:
            # Negative PCs would wrap Python's list indexing; static
            # negative targets divert to the reference path above, JR
            # guards itself in-loop, leaving only the entry.
            result.fell_off = True
            return result

        while retired < max_instructions:
            try:
                c = code[pc]
            except IndexError:
                result.fell_off = True
                break
            if c == _HALT:
                result.halted = True
                break
            if warm:
                # One fetch probe per cache line (see WarmupEngine).
                line = pc >> line_shift
                if line != last_line:
                    last_line = line
                    cache_line = ic_line_base + line
                    lines = ic_sets[cache_line & ic_set_mask]
                    tag = cache_line >> ic_set_bits
                    if tag in lines:
                        ic_hits += 1
                        lines.move_to_end(tag)
                    else:
                        word = _IBASE + pc
                        ic_alloc(word) or l2_access(word)
            if c < _FADD:                          # integer ALU
                if c == _ADD:
                    value = regs[s0[pc]] + regs[s1[pc]]
                elif c == _ADDI:
                    value = regs[s0[pc]] + imm[pc]
                elif c == _LI:
                    value = imm[pc]
                elif c == _SUB:
                    value = regs[s0[pc]] - regs[s1[pc]]
                elif c == _SLT:
                    value = 1 if regs[s0[pc]] < regs[s1[pc]] else 0
                elif c == _MOV:
                    value = regs[s0[pc]]
                elif c == _AND:
                    value = regs[s0[pc]] & regs[s1[pc]]
                elif c == _OR:
                    value = regs[s0[pc]] | regs[s1[pc]]
                elif c == _XOR:
                    value = regs[s0[pc]] ^ regs[s1[pc]]
                elif c == _MUL:
                    value = regs[s0[pc]] * regs[s1[pc]]
                elif c == _SHL:
                    value = regs[s0[pc]] << (regs[s1[pc]] & 63)
                elif c == _SHR:
                    value = regs[s0[pc]] >> (regs[s1[pc]] & 63)
                else:                              # DIV
                    divisor = regs[s1[pc]]
                    value = (int(regs[s0[pc]] / divisor) if divisor
                             else 0)
                # Inline wrap_int (signed 64-bit two's complement).
                value &= _MASK64
                regs[dest[pc]] = (value - _TWO64 if value & _SIGN64
                                  else value)
                pc += 1
            elif c <= _BNEZ and c >= _BEQ:         # conditional branch
                a = regs[s0[pc]]
                if c == _BLT:
                    taken = a < regs[s1[pc]]
                elif c == _BNE:
                    taken = a != regs[s1[pc]]
                elif c == _BEQ:
                    taken = a == regs[s1[pc]]
                elif c == _BGE:
                    taken = a >= regs[s1[pc]]
                elif c == _BEQZ:
                    taken = a == 0
                else:                              # BNEZ
                    taken = a != 0
                next_pc = target[pc] if taken else pc + 1
                if warm:
                    correct = train(pc, taken)
                    if conf_update is not None:
                        conf_update(pc, correct=correct, taken=taken)
                elif prof:
                    n = retired + 1 - b_anchor
                    b_counts[b_entry] = b_counts.get(b_entry, 0) + n
                    b_pos += n
                    if b_pos >= b_interval:
                        b_intervals.append(b_counts)
                        b_counts = {}
                        b_pos = 0
                    b_anchor = retired + 1
                    b_entry = next_pc
                pc = next_pc
            elif c == _LD or c == _FLD:
                base = regs[s0[pc]]
                if base.__class__ is int:          # inline effective_address
                    addr = (base + imm[pc]) & _MASK64
                else:
                    addr = effective_address(base, imm[pc])
                value = mem_get(addr, 0)
                regs[dest[pc]] = float(value) if c == _FLD else value
                if warm:
                    cache_line = addr >> line_shift
                    if cache_line == dc_last_line:
                        # Same line as the previous D-cache access: it
                        # is present and already MRU, so the touch is a
                        # pure hit-count increment.
                        dc_hits += 1
                    else:
                        lines = dc_sets[cache_line & dc_set_mask]
                        tag = cache_line >> dc_set_bits
                        if tag in lines:
                            dc_hits += 1
                            lines.move_to_end(tag)
                        else:
                            dc_alloc(addr) or l2_access(addr)
                        dc_last_line = cache_line
                        dc_last_set = lines
                        dc_last_tag = tag
                pc += 1
            elif c == _ST or c == _FST:
                base = regs[s1[pc]]
                if base.__class__ is int:
                    addr = (base + imm[pc]) & _MASK64
                else:
                    addr = effective_address(base, imm[pc])
                mem[addr] = regs[s0[pc]]
                if warm:
                    cache_line = addr >> line_shift
                    if cache_line == dc_last_line:
                        dc_hits += 1
                        dc_last_set[dc_last_tag] = True
                    else:
                        lines = dc_sets[cache_line & dc_set_mask]
                        tag = cache_line >> dc_set_bits
                        if tag in lines:
                            dc_hits += 1
                            lines.move_to_end(tag)
                            lines[tag] = True
                        else:
                            dc_alloc(addr, True) or l2_access(addr, True)
                        dc_last_line = cache_line
                        dc_last_set = lines
                        dc_last_tag = tag
                pc += 1
            elif c < _LD:                          # FP arithmetic
                inst = insts[pc]
                regs[dest[pc]] = evaluate(
                    inst.op, [regs[s] for s in inst.srcs], imm[pc])
                pc += 1
            elif c == _JMP:
                next_pc = target[pc]
                if prof:
                    n = retired + 1 - b_anchor
                    b_counts[b_entry] = b_counts.get(b_entry, 0) + n
                    b_pos += n
                    if b_pos >= b_interval:
                        b_intervals.append(b_counts)
                        b_counts = {}
                        b_pos = 0
                    b_anchor = retired + 1
                    b_entry = next_pc
                pc = next_pc
            elif c == _JR:
                next_pc = int(regs[s0[pc]])
                if warm:
                    btb_update(pc, next_pc, btb_predict(pc) == next_pc)
                elif prof:
                    n = retired + 1 - b_anchor
                    b_counts[b_entry] = b_counts.get(b_entry, 0) + n
                    b_pos += n
                    if b_pos >= b_interval:
                        b_intervals.append(b_counts)
                        b_counts = {}
                        b_pos = 0
                    b_anchor = retired + 1
                    b_entry = next_pc
                pc = next_pc
                if pc < 0:
                    # A negative target would wrap around the decoded
                    # arrays (the fetch guard only catches the high
                    # side); terminate exactly like step() would on the
                    # next fetch.
                    retired += 1
                    if retired < max_instructions:
                        result.fell_off = True
                    break
            else:                                  # NOP
                pc += 1
            retired += 1

        self.pc = pc
        result.retired = retired
        self.retired_total += retired
        if prof:
            bbv.counts = b_counts
            bbv.pos = b_pos
            bbv.entry_pc = b_entry
            bbv.pending = retired - b_anchor
        if warm:
            warmup._last_fetch_line = last_line
            warmup.instructions += retired
            icache.hits += ic_hits
            dcache.hits += dc_hits
        return result


def run_program(program: Program, max_instructions: int = 1_000_000,
                **kwargs) -> EmulatorResult:
    """Convenience one-shot emulation of ``program``."""
    return Emulator(program, **kwargs).run(max_instructions)
