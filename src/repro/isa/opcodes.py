"""Opcode definitions and static per-opcode metadata.

The ISA is a small load/store RISC machine, rich enough to express the
synthetic SPEC-like workloads: integer ALU ops (with multi-cycle multiply
and divide), floating point arithmetic, loads/stores for both classes,
conditional branches, direct and indirect jumps.

Metadata is kept in flat dicts keyed by :class:`Op` so the simulator's hot
paths are single dict lookups (pre-resolved onto each ``Instruction`` at
build time anyway).
"""

from __future__ import annotations

from enum import Enum, auto


class Op(Enum):
    """Every opcode in the repro ISA."""

    # Integer ALU.
    ADD = auto()
    SUB = auto()
    MUL = auto()
    DIV = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    SHL = auto()
    SHR = auto()
    SLT = auto()          # set-if-less-than -> 0/1
    ADDI = auto()         # dest = src + imm
    LI = auto()           # dest = imm
    MOV = auto()          # dest = src

    # Floating point.
    FADD = auto()
    FSUB = auto()
    FMUL = auto()
    FDIV = auto()
    FMOV = auto()
    FCVT = auto()         # int -> fp convert
    FCMPLT = auto()       # fp compare, writes an *int* register (0/1)

    # Memory. Addresses are word-granular: address = src0 + imm.
    LD = auto()           # int load
    ST = auto()           # int store: mem[src1 + imm] = src0
    FLD = auto()          # fp load
    FST = auto()          # fp store

    # Control.
    BEQ = auto()          # branch if src0 == src1
    BNE = auto()
    BLT = auto()
    BGE = auto()
    BEQZ = auto()         # branch if src0 == 0
    BNEZ = auto()
    JMP = auto()          # unconditional direct jump
    JR = auto()           # indirect jump: target = value(src0)

    # Misc.
    NOP = auto()
    HALT = auto()


class FUType(Enum):
    """Functional-unit class an op executes on (Table I: 4 Int, 4 Fp, 2 LdSt)."""

    INT = "int"
    FP = "fp"
    LDST = "ldst"
    NONE = "none"         # NOP/HALT consume no functional unit


#: Dense integer encoding of :class:`FUType` for the issue hot loop —
#: the functional-unit pool indexes plain lists with these instead of
#: hashing enum members.
FU_CODE = {FUType.INT: 0, FUType.FP: 1, FUType.LDST: 2, FUType.NONE: 3}


_INT_ALU = {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
            Op.SLT, Op.ADDI, Op.LI, Op.MOV}
_FP_ARITH = {Op.FADD, Op.FSUB, Op.FMUL, Op.FMOV, Op.FCVT, Op.FCMPLT}

BRANCH_OPS = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BEQZ, Op.BNEZ}
JUMP_OPS = {Op.JMP, Op.JR}
CONTROL_OPS = BRANCH_OPS | JUMP_OPS
LOAD_OPS = {Op.LD, Op.FLD}
STORE_OPS = {Op.ST, Op.FST}
MEM_OPS = LOAD_OPS | STORE_OPS

#: Ops whose destination register is a *write* (these create a new MSP state).
WRITES_REG = _INT_ALU | _FP_ARITH | {Op.FDIV, Op.MUL, Op.DIV} | LOAD_OPS

#: Execution latency in cycles, excluding memory-hierarchy time for loads.
LATENCY = {
    Op.MUL: 3,
    Op.DIV: 12,
    Op.FADD: 4,
    Op.FSUB: 4,
    Op.FMUL: 4,
    Op.FDIV: 12,
    Op.FCVT: 2,
    Op.FCMPLT: 2,
}
DEFAULT_LATENCY = 1


def op_latency(op: Op) -> int:
    """Fixed execute latency of ``op`` (loads add memory access time)."""
    return LATENCY.get(op, DEFAULT_LATENCY)


def op_fu_type(op: Op) -> FUType:
    """Functional-unit class ``op`` issues to."""
    if op in MEM_OPS:
        return FUType.LDST
    if op in _FP_ARITH or op is Op.FDIV:
        return FUType.FP
    if op in (Op.NOP, Op.HALT):
        return FUType.NONE
    # Integer ALU ops, MUL/DIV, branches and jumps run on the int units.
    return FUType.INT


def op_writes_reg(op: Op) -> bool:
    """True if ``op`` assigns a destination register (creates an MSP state)."""
    return op in WRITES_REG


def op_is_branch(op: Op) -> bool:
    """True for conditional branches."""
    return op in BRANCH_OPS


def op_is_control(op: Op) -> bool:
    """True for any control transfer (conditional or jump)."""
    return op in CONTROL_OPS


#: Execution-kind codes pre-resolved onto each ``Instruction`` so the
#: core's execute path dispatches on one int instead of walking a chain
#: of boolean attributes.
KIND_ALU = 0
KIND_BRANCH = 1
KIND_JMP = 2
KIND_JR = 3
KIND_LOAD = 4
KIND_STORE = 5
KIND_NONE = 6          # NOP/HALT: never executes


def op_kind(op: Op) -> int:
    """Execution-kind code of ``op`` (``KIND_*`` constants)."""
    if op in BRANCH_OPS:
        return KIND_BRANCH
    if op is Op.JMP:
        return KIND_JMP
    if op is Op.JR:
        return KIND_JR
    if op in LOAD_OPS:
        return KIND_LOAD
    if op in STORE_OPS:
        return KIND_STORE
    if op in (Op.NOP, Op.HALT):
        return KIND_NONE
    return KIND_ALU
