"""Programs and the label-based program builder.

A :class:`Program` is the unit the simulator runs: instruction memory,
initial data memory and an entry point. :class:`ProgramBuilder` is a tiny
assembler used by :mod:`repro.workloads` to emit the synthetic SPEC-like
kernels; it supports forward label references and sequential data-region
allocation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import Value

#: Data regions are allocated upward from this word address, leaving low
#: addresses free for ad-hoc scratch use by tests.
DATA_BASE = 0x1000


class DecodedProgram:
    """Flat parallel-array predecode of a program's instruction memory.

    One list per field (opcode value, sources, destination, immediate,
    target), indexed by PC.  The emulator's fast interpreter loop
    dispatches on ``code[pc]`` — a plain int compare — instead of
    touching ``Instruction`` attributes; unused register fields are 0 so
    indexed reads never need a None check (the per-opcode dispatch
    decides which fields are meaningful).  ``insts`` keeps the decoded
    ``Instruction`` objects for the rare generic-semantics fallback.
    """

    __slots__ = ("size", "code", "s0", "s1", "dest", "imm", "target",
                 "insts", "has_wild_targets", "kind", "fu", "lat",
                 "nsrc", "wreg", "evalf", "branchf", "_codegen_cache")

    def __init__(self, instructions: Sequence[Instruction]) -> None:
        self.insts: List[Instruction] = list(instructions)
        self.size = len(self.insts)
        self.code = [inst.op.value for inst in self.insts]
        self.s0 = [inst.srcs[0] if inst.srcs else 0 for inst in self.insts]
        self.s1 = [inst.srcs[1] if len(inst.srcs) > 1 else 0
                   for inst in self.insts]
        self.dest = [inst.dest if inst.dest is not None else 0
                     for inst in self.insts]
        self.imm = [inst.imm for inst in self.insts]
        self.target = [inst.target if inst.target is not None else 0
                       for inst in self.insts]
        # Static timing-core columns (structure-of-arrays in-flight
        # state reads per-PC metadata from here instead of touching
        # Instruction objects on the hot path).
        self.kind = [inst.kind for inst in self.insts]
        self.fu = [inst.fu_code for inst in self.insts]
        self.lat = [inst.latency for inst in self.insts]
        self.nsrc = [len(inst.srcs) for inst in self.insts]
        self.wreg = [inst.writes_reg for inst in self.insts]
        self.evalf = [inst.eval_fn for inst in self.insts]
        self.branchf = [inst.branch_fn for inst in self.insts]
        #: Compiled exec-closure builders, filled lazily by
        #: :mod:`repro.pipeline.codegen` (keyed by flavor+semantics fp).
        self._codegen_cache: Optional[Dict] = None
        #: A negative *static* target would wrap Python's list indexing
        #: in the fast loop (the reference path treats it as PC
        #: fall-off); such programs can't come from ProgramBuilder, so
        #: flag them here and let run_fast take the reference path.
        self.has_wild_targets = any(
            inst.target is not None and inst.target < 0
            for inst in self.insts)


class Program:
    """A complete executable: instruction memory + initial data memory.

    Programs are immutable once built: the decoded fast-dispatch arrays
    (:attr:`decoded`) are computed once and cached.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction],
        initial_memory: Optional[Dict[int, Value]] = None,
        labels: Optional[Dict[str, int]] = None,
    ) -> None:
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        self.initial_memory: Dict[int, Value] = dict(initial_memory or {})
        self.labels: Dict[str, int] = dict(labels or {})
        self.entry = 0
        self._memory_lines: Optional[List[int]] = None
        self._decoded: Optional[DecodedProgram] = None
        self._fingerprint: Optional[str] = None

    @property
    def decoded(self) -> DecodedProgram:
        """Flat predecoded arrays for the emulator's fast loop (cached;
        built on first use so programs constructed purely for listings
        or analysis never pay for it)."""
        if self._decoded is None:
            self._decoded = DecodedProgram(self.instructions)
        return self._decoded

    @property
    def memory_line_addrs(self) -> List[int]:
        """One representative word address per initialised 8-word cache
        line, in address order (cached; used for cache warming)."""
        if self._memory_lines is None:
            lines = sorted({addr >> 3 for addr in self.initial_memory})
            self._memory_lines = [line << 3 for line in lines]
        return self._memory_lines

    def content_fingerprint(self) -> str:
        """Stable content hash of the executable: every instruction
        field, the initial memory image (type-exact — an int and a
        float word are different values) and the entry point.  The
        display name is excluded: two identically-built programs are
        the same workload and may share cached functional artifacts
        (:mod:`repro.sim.artifacts`).  Cached — programs are immutable
        once built."""
        if self._fingerprint is None:
            import hashlib
            digest = hashlib.sha256()
            for inst in self.instructions:
                digest.update(repr(
                    (inst.op.value, inst.dest, tuple(inst.srcs),
                     inst.imm, inst.target)).encode("utf-8"))
            for addr in sorted(self.initial_memory):
                value = self.initial_memory[addr]
                digest.update(
                    f"{addr}:{value.__class__.__name__}:{value!r};"
                    .encode("utf-8"))
            digest.update(str(self.entry).encode("utf-8"))
            self._fingerprint = digest.hexdigest()[:32]
        return self._fingerprint

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Instruction at ``pc``, or ``None`` if the PC fell off the program."""
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    def listing(self) -> str:
        """Assembly-style listing, for debugging workloads."""
        by_pc: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in by_pc.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"  {pc:5d}  {inst!r}")
        return "\n".join(lines)


class _LabelRef:
    """Placeholder target recorded until labels are resolved."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class ProgramBuilder:
    """Emit instructions with symbolic labels, then :meth:`build` a Program.

    Branch/jump targets may be given as a label string (forward references
    allowed) or as an absolute PC integer.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[int] = []       # indices with _LabelRef targets
        self._memory: Dict[int, Value] = {}
        self._next_data = DATA_BASE

    # ------------------------------------------------------------------ #
    # Labels and data.
    # ------------------------------------------------------------------ #

    def label(self, name: str) -> None:
        """Define ``name`` at the current PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r} in {self.name}")
        self._labels[name] = len(self._instructions)

    @property
    def pc(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._instructions)

    def data_region(self, values: Iterable[Value], align: int = 1) -> int:
        """Allocate a data region initialised with ``values``; return its base."""
        if align > 1:
            self._next_data += (-self._next_data) % align
        base = self._next_data
        count = 0
        for offset, value in enumerate(values):
            self._memory[base + offset] = value
            count += 1
        self._next_data = base + count
        return base

    def reserve(self, count: int, fill: Value = 0, align: int = 1) -> int:
        """Allocate ``count`` words initialised to ``fill``; return the base."""
        return self.data_region([fill] * count, align=align)

    # ------------------------------------------------------------------ #
    # Raw emit plus one helper per opcode.
    # ------------------------------------------------------------------ #

    def emit(
        self,
        op: Op,
        dest: Optional[int] = None,
        srcs: Sequence[int] = (),
        imm: int = 0,
        target: Union[str, int, None] = None,
    ) -> int:
        """Emit one instruction; returns its PC."""
        resolved: Optional[int]
        if isinstance(target, str):
            resolved = 0  # patched in build()
        else:
            resolved = target
        inst = Instruction(op, dest=dest, srcs=tuple(srcs), imm=imm,
                           target=resolved)
        pc = len(self._instructions)
        self._instructions.append(inst)
        if isinstance(target, str):
            inst.target = _LabelRef(target)  # type: ignore[assignment]
            self._fixups.append(pc)
        return pc

    def add(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.ADD, rd, (rs1, rs2))

    def sub(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SUB, rd, (rs1, rs2))

    def mul(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.MUL, rd, (rs1, rs2))

    def div(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.DIV, rd, (rs1, rs2))

    def and_(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.AND, rd, (rs1, rs2))

    def or_(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.OR, rd, (rs1, rs2))

    def xor(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.XOR, rd, (rs1, rs2))

    def shl(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SHL, rd, (rs1, rs2))

    def shr(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SHR, rd, (rs1, rs2))

    def slt(self, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Op.SLT, rd, (rs1, rs2))

    def addi(self, rd: int, rs: int, imm: int) -> int:
        return self.emit(Op.ADDI, rd, (rs,), imm=imm)

    def li(self, rd: int, imm: int) -> int:
        return self.emit(Op.LI, rd, imm=imm)

    def mov(self, rd: int, rs: int) -> int:
        return self.emit(Op.MOV, rd, (rs,))

    def fadd(self, fd: int, fs1: int, fs2: int) -> int:
        return self.emit(Op.FADD, fd, (fs1, fs2))

    def fsub(self, fd: int, fs1: int, fs2: int) -> int:
        return self.emit(Op.FSUB, fd, (fs1, fs2))

    def fmul(self, fd: int, fs1: int, fs2: int) -> int:
        return self.emit(Op.FMUL, fd, (fs1, fs2))

    def fdiv(self, fd: int, fs1: int, fs2: int) -> int:
        return self.emit(Op.FDIV, fd, (fs1, fs2))

    def fmov(self, fd: int, fs: int) -> int:
        return self.emit(Op.FMOV, fd, (fs,))

    def fcvt(self, fd: int, rs: int) -> int:
        return self.emit(Op.FCVT, fd, (rs,))

    def fcmplt(self, rd: int, fs1: int, fs2: int) -> int:
        return self.emit(Op.FCMPLT, rd, (fs1, fs2))

    def ld(self, rd: int, base: int, offset: int = 0) -> int:
        return self.emit(Op.LD, rd, (base,), imm=offset)

    def st(self, rv: int, base: int, offset: int = 0) -> int:
        return self.emit(Op.ST, srcs=(rv, base), imm=offset)

    def fld(self, fd: int, base: int, offset: int = 0) -> int:
        return self.emit(Op.FLD, fd, (base,), imm=offset)

    def fst(self, fv: int, base: int, offset: int = 0) -> int:
        return self.emit(Op.FST, srcs=(fv, base), imm=offset)

    def beq(self, rs1: int, rs2: int, target: Union[str, int]) -> int:
        return self.emit(Op.BEQ, srcs=(rs1, rs2), target=target)

    def bne(self, rs1: int, rs2: int, target: Union[str, int]) -> int:
        return self.emit(Op.BNE, srcs=(rs1, rs2), target=target)

    def blt(self, rs1: int, rs2: int, target: Union[str, int]) -> int:
        return self.emit(Op.BLT, srcs=(rs1, rs2), target=target)

    def bge(self, rs1: int, rs2: int, target: Union[str, int]) -> int:
        return self.emit(Op.BGE, srcs=(rs1, rs2), target=target)

    def beqz(self, rs: int, target: Union[str, int]) -> int:
        return self.emit(Op.BEQZ, srcs=(rs,), target=target)

    def bnez(self, rs: int, target: Union[str, int]) -> int:
        return self.emit(Op.BNEZ, srcs=(rs,), target=target)

    def jmp(self, target: Union[str, int]) -> int:
        return self.emit(Op.JMP, target=target)

    def jr(self, rs: int) -> int:
        return self.emit(Op.JR, srcs=(rs,))

    def nop(self) -> int:
        return self.emit(Op.NOP)

    def halt(self) -> int:
        return self.emit(Op.HALT)

    # ------------------------------------------------------------------ #

    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        for pc in self._fixups:
            inst = self._instructions[pc]
            ref = inst.target
            assert isinstance(ref, _LabelRef)
            if ref.name not in self._labels:
                raise ValueError(
                    f"undefined label {ref.name!r} in {self.name}")
            inst.target = self._labels[ref.name]
        self._fixups.clear()
        return Program(self.name, self._instructions, self._memory,
                       self._labels)
