"""Shared runtime defaults (single source of truth).

Historically ``repro.sim.runner.simulate`` hardcoded a 50k-instruction
budget while the experiment harnesses read ``REPRO_INSTRUCTIONS``
(default 3000) — two different answers to "how long is a simulation by
default". Everything now routes through :func:`default_instructions`.

This module sits below both the pipeline and sim layers (it imports
nothing from repro), so any layer may use it without cycles.

Environment knobs
-----------------

``REPRO_INSTRUCTIONS``
    Committed-instruction budget per full-detail simulation
    (default 3000).
``REPRO_SAMPLE_INSTRUCTIONS``
    Budget for *sampled* runs (default ``30 x REPRO_INSTRUCTIONS``:
    fast-forwarding makes a far larger represented budget affordable
    at comparable wall-clock).
"""

from __future__ import annotations

import os

#: Fallback when ``REPRO_INSTRUCTIONS`` is unset.
BASE_INSTRUCTIONS = 3000

#: Sampled runs default to this multiple of the full-detail budget.
SAMPLE_BUDGET_FACTOR = 30


class EnvConfigError(ValueError):
    """A ``REPRO_*`` environment variable is set to a malformed value.

    A dedicated type so the CLI can report it as a one-line input
    error without also swallowing internal simulator ``ValueError``
    invariants."""


def env_int(name: str, fallback: int) -> int:
    """Integer environment variable with a fallback (shared by every
    layer that reads ``REPRO_*`` numeric knobs). A set-but-malformed
    value raises instead of silently reverting to the default — the
    run would otherwise complete (and cache) under a schedule the user
    never configured."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise EnvConfigError(f"{name} must be an integer, got {raw!r}")


def env_float(name: str, fallback: float) -> float:
    """Float environment variable with a fallback, same malformed-value
    contract as :func:`env_int`."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        return float(raw)
    except ValueError:
        raise EnvConfigError(f"{name} must be a number, got {raw!r}")


def default_instructions() -> int:
    """Committed-instruction budget for one full-detail simulation."""
    return env_int("REPRO_INSTRUCTIONS", BASE_INSTRUCTIONS)


def default_sample_instructions() -> int:
    """Represented-instruction budget for one sampled simulation."""
    return env_int("REPRO_SAMPLE_INSTRUCTIONS",
                   SAMPLE_BUDGET_FACTOR * default_instructions())


__all__ = ["BASE_INSTRUCTIONS", "EnvConfigError",
           "SAMPLE_BUDGET_FACTOR", "default_instructions",
           "default_sample_instructions", "env_float", "env_int"]
