"""Set-associative, write-back, write-allocate cache with LRU replacement.

Addresses are word-granular in the ISA (one word = 8 bytes); the cache
converts to byte addresses internally so the configured line size (64 B,
Table I) maps to 8 words per line.
"""

from __future__ import annotations

from collections import OrderedDict

WORD_BYTES = 8


class Cache:
    """One level of cache. Tracks hits/misses; timing lives in the hierarchy."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int = 64) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(f"{name}: size not divisible by assoc*line")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self.set_mask = self.num_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        self._set_bits = self.num_sets.bit_length() - 1
        # Per-set LRU-ordered {tag: dirty} maps.
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, word_addr: int):
        line = (word_addr * WORD_BYTES) >> self._line_shift
        return line & self.set_mask, line >> self._set_bits

    def access(self, word_addr: int, write: bool = False) -> bool:
        """Access the cache; allocate on miss. Returns True on hit.

        (``_locate`` is inlined here: this is the per-probe hot path of
        both the timing cores and the fused warm-forward loop.)
        """
        line = (word_addr << 3) >> self._line_shift  # * WORD_BYTES
        set_index = line & self.set_mask
        tag = line >> self._set_bits
        lines = self._sets[set_index]
        if tag in lines:
            self.hits += 1
            lines.move_to_end(tag)
            if write:
                lines[tag] = True
            return True
        self.misses += 1
        lines[tag] = write
        lines.move_to_end(tag)
        if len(lines) > self.assoc:
            _, dirty = lines.popitem(last=False)
            if dirty:
                self.writebacks += 1
        return False

    def probe(self, word_addr: int) -> bool:
        """Non-allocating lookup (no LRU update, no stats)."""
        set_index, tag = self._locate(word_addr)
        return tag in self._sets[set_index]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class MemoryHierarchy:
    """Table I memory subsystem.

    * I-cache: 64 KB, 4-way, 1-cycle hit
    * D-cache: 64 KB, 4-way, 4-cycle hit
    * L2: 1 MB, 8-way, 16-cycle hit (unified; instruction misses also go
      through it)
    * main memory: 380 cycles
    """

    def __init__(
        self,
        icache_size: int = 64 * 1024,
        icache_assoc: int = 4,
        icache_hit: int = 1,
        dcache_size: int = 64 * 1024,
        dcache_assoc: int = 4,
        dcache_hit: int = 4,
        l2_size: int = 1024 * 1024,
        l2_assoc: int = 8,
        l2_hit: int = 16,
        line_bytes: int = 64,
        memory_latency: int = 380,
    ) -> None:
        self.icache = Cache("L1I", icache_size, icache_assoc, line_bytes)
        self.dcache = Cache("L1D", dcache_size, dcache_assoc, line_bytes)
        self.l2 = Cache("L2", l2_size, l2_assoc, line_bytes)
        self.icache_hit = icache_hit
        self.dcache_hit = dcache_hit
        self.l2_hit = l2_hit
        self.memory_latency = memory_latency

    @classmethod
    def from_config(cls, config) -> "MemoryHierarchy":
        """Build the hierarchy a :class:`~repro.sim.config.SimConfig`
        describes — the single mapping from config fields to cache
        geometry, shared by the timing cores and the sampled engine's
        warm-up so the two can never drift apart."""
        return cls(
            icache_size=config.icache_size,
            icache_assoc=config.icache_assoc,
            dcache_size=config.dcache_size,
            dcache_assoc=config.dcache_assoc,
            dcache_hit=config.dcache_hit,
            l2_size=config.l2_size, l2_assoc=config.l2_assoc,
            l2_hit=config.l2_hit, line_bytes=config.line_bytes,
            memory_latency=config.memory_latency,
        )

    def instruction_latency(self, pc: int) -> int:
        """Cycles to fetch the line holding instruction ``pc``.

        Instructions live in their own address space; offset them away
        from data so the shared L2 sees distinct lines.
        """
        word_addr = (1 << 40) + pc
        if self.icache.access(word_addr):
            return self.icache_hit
        if self.l2.access(word_addr):
            return self.l2_hit
        return self.memory_latency

    def load_latency(self, word_addr: int) -> int:
        """Cycles for a demand load of ``word_addr``."""
        if self.dcache.access(word_addr):
            return self.dcache_hit
        if self.l2.access(word_addr):
            return self.l2_hit
        return self.memory_latency

    def store_commit(self, word_addr: int) -> None:
        """A committed store drains to the D-cache (no pipeline stall)."""
        if not self.dcache.access(word_addr, write=True):
            self.l2.access(word_addr, write=True)

    def warm(self, instruction_pcs, data_addrs) -> None:
        """Pre-warm the hierarchy, emulating the state a long-running
        SimPoint would start from: all instruction lines in L1I/L2, data
        streamed through L2 and L1D (LRU keeps the most recent working
        set). Statistics are reset afterwards so warming does not count.
        """
        for pc in instruction_pcs:
            word_addr = (1 << 40) + pc
            self.icache.access(word_addr)
            self.l2.access(word_addr)
        for addr in data_addrs:
            self.l2.access(addr)
            self.dcache.access(addr)
        for cache in (self.icache, self.dcache, self.l2):
            cache.hits = 0
            cache.misses = 0
            cache.writebacks = 0
