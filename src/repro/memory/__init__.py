"""Memory hierarchy: set-associative caches and Table I timing."""

from repro.memory.cache import WORD_BYTES, Cache, MemoryHierarchy

__all__ = ["Cache", "MemoryHierarchy", "WORD_BYTES"]
