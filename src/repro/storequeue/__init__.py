"""Store queues: single-level (baseline) and hierarchical (CPR/MSP)."""

from repro.storequeue.queue import StoreEntry, StoreQueue

__all__ = ["StoreEntry", "StoreQueue"]
