"""Store queues.

Two organisations, per Table I:

* the **baseline** uses a single-level store queue (24 entries);
* **CPR and MSP** use the hierarchical two-level store queue of [2]:
  a small, fast L1 SQ holding the *youngest* stores plus a large L2 SQ
  that the oldest entries overflow into. Forwarding from the L2 requires
  scanning the large structure, which costs extra cycles — the delay the
  paper calls out in its introduction.

Entries are ordered by the dynamic sequence number the dispatch stage
assigns to every instruction. All three machines squash by sequence
number (MSP's StateId order is consistent with it; the release tag —
StateId or checkpoint interval — is translated to a sequence bound by
the core).

Memory disambiguation (identical across machines, so comparisons are
fair): store *addresses* resolve as soon as the address operand is
available — before the store itself issues — modelling an early AGU.
A load may issue once every older store's address is known and none of
the known addresses conflict; a conflicting older store blocks the load
until its data arrives, then forwards it (with the L2-scan penalty when
the entry has overflowed to the second level).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.semantics import Value


class StoreEntry:
    """One in-flight store."""

    __slots__ = ("seq", "addr", "value", "executed")

    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.addr: Optional[int] = None   # known once the AGU resolves it
        self.value: Optional[Value] = None
        self.executed = False             # data present


class StoreQueue:
    """Ordered store queue, optionally hierarchical.

    Parameters
    ----------
    l1_capacity:
        Entries in the fast level (``None`` = unbounded, the ideal MSP).
    l2_capacity:
        Entries in the slow overflow level (0 = single-level).
    l2_forward_penalty:
        Extra cycles to forward from an L2 entry.
    """

    def __init__(self, l1_capacity: Optional[int] = 24,
                 l2_capacity: int = 0,
                 l2_forward_penalty: int = 8) -> None:
        self.l1_capacity = l1_capacity
        self.l2_capacity = l2_capacity
        self.l2_forward_penalty = l2_forward_penalty
        self._entries: List[StoreEntry] = []     # oldest first
        self._unknown_addr: Dict[int, StoreEntry] = {}   # seq -> entry
        # addr -> entries with that address still lacking data.
        self._pending_data: Dict[int, List[StoreEntry]] = {}
        self.forwards = 0
        self.l2_forwards = 0
        self.committed_stores = 0
        self.squashed_stores = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> Optional[int]:
        if self.l1_capacity is None:
            return None
        return self.l1_capacity + self.l2_capacity

    def is_full(self) -> bool:
        capacity = self.capacity
        return capacity is not None and len(self._entries) >= capacity

    def allocate(self, seq: int) -> StoreEntry:
        """Allocate an entry at dispatch (address/value still unknown)."""
        if self.is_full():
            raise RuntimeError("store queue overflow; check is_full() first")
        if self._entries and self._entries[-1].seq >= seq:
            raise ValueError("stores must be allocated in sequence order")
        entry = StoreEntry(seq)
        self._entries.append(entry)
        self._unknown_addr[seq] = entry
        return entry

    def set_address(self, entry: StoreEntry, addr: int) -> None:
        """Early AGU: the store's address operand became available."""
        if entry.addr is not None:
            return
        entry.addr = addr
        self._unknown_addr.pop(entry.seq, None)
        if not entry.executed:
            self._pending_data.setdefault(addr, []).append(entry)

    def execute(self, entry: StoreEntry, addr: int, value: Value) -> None:
        """The store issued: data (and, if not already known, address)."""
        self.set_address(entry, addr)
        entry.value = value
        entry.executed = True
        pending = self._pending_data.get(addr)
        if pending is not None:
            pending[:] = [e for e in pending if e is not entry]
            if not pending:
                del self._pending_data[addr]

    # ------------------------------------------------------------------ #
    # Disambiguation and forwarding.
    # ------------------------------------------------------------------ #

    def load_blocked(self, addr: int, load_seq: int) -> bool:
        """May the load at ``load_seq`` to ``addr`` issue?

        Blocked while any older store's address is unknown, or an older
        store to the same address still lacks its data.
        """
        for seq in self._unknown_addr:
            if seq < load_seq:
                return True
        for entry in self._pending_data.get(addr, ()):
            if entry.seq < load_seq:
                return True
        return False

    def _level_of(self, index: int) -> int:
        """1 if the entry at ``index`` sits in the fast level, else 2."""
        if self.l1_capacity is None:
            return 1
        from_young = len(self._entries) - 1 - index
        return 1 if from_young < self.l1_capacity else 2

    def forward(self, addr: int, load_seq: int) -> Tuple[Optional[Value], int]:
        """Store-to-load forwarding for an issuing load.

        Returns ``(value, extra_latency)``; value is ``None`` when no
        older store to ``addr`` has data (the load goes to the cache).
        """
        for index in range(len(self._entries) - 1, -1, -1):
            entry = self._entries[index]
            if entry.seq >= load_seq:
                continue
            if entry.executed and entry.addr == addr:
                self.forwards += 1
                if self._level_of(index) == 2:
                    self.l2_forwards += 1
                    return entry.value, self.l2_forward_penalty
                return entry.value, 0
        return None, 0

    # ------------------------------------------------------------------ #
    # Commit / squash.
    # ------------------------------------------------------------------ #

    def commit_up_to(self, seq_bound: int,
                     write: Callable[[int, Value], None],
                     limit: Optional[int] = None) -> int:
        """Drain executed stores with ``seq <= seq_bound`` to memory.

        Stores drain strictly in order; an unexecuted store at the head
        blocks the drain. Returns the number of stores drained.
        """
        drained = 0
        while self._entries and self._entries[0].seq <= seq_bound:
            head = self._entries[0]
            if not head.executed:
                break
            if limit is not None and drained >= limit:
                break
            write(head.addr, head.value)
            self._entries.pop(0)
            drained += 1
            self.committed_stores += 1
        return drained

    def squash_after(self, seq_bound: int) -> int:
        """Drop entries with ``seq > seq_bound`` (recovery)."""
        kept = len(self._entries)
        while self._entries and self._entries[-1].seq > seq_bound:
            entry = self._entries.pop()
            self._unknown_addr.pop(entry.seq, None)
            if entry.addr is not None and not entry.executed:
                pending = self._pending_data.get(entry.addr)
                if pending is not None:
                    pending[:] = [e for e in pending if e is not entry]
                    if not pending:
                        del self._pending_data[entry.addr]
        squashed = kept - len(self._entries)
        self.squashed_stores += squashed
        return squashed

    def oldest_seq(self) -> Optional[int]:
        return self._entries[0].seq if self._entries else None

    def oldest_unexecuted_seq(self) -> Optional[int]:
        """Sequence number of the oldest store still lacking data."""
        for entry in self._entries:
            if not entry.executed:
                return entry.seq
        return None
